//! Peer records and the per-node membership table.
//!
//! Each appliance keeps its own [`MembershipTable`]: what it currently
//! believes about every peer it has heard of. Beliefs are reconciled
//! SWIM-style — a record carries an *incarnation* number owned by the
//! peer it describes, and [`MembershipTable::merge_record`] applies the
//! standard precedence rules so that two tables exchanging records
//! always converge on the freshest knowledge.

use hpop_netsim::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a peer appliance on the fabric.
///
/// Service-local identifiers (NoCDN `PeerId(u32)`, DCol `MemberId`,
/// coop member numbers) map into this space; the fabric is the shared
/// namespace underneath all four services.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PeerId(pub u64);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

/// SWIM-style liveness state of a peer, as believed by one observer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PeerState {
    /// Responding to probes (or gossiped as such).
    #[default]
    Alive,
    /// Suspicion raised (phi over threshold) but not yet declared dead;
    /// the peer can refute by bumping its incarnation.
    Suspect,
    /// Declared failed; evicted from selection.
    Dead,
    /// Departed voluntarily (clean goodbye); evicted, never suspected.
    Left,
}

impl PeerState {
    /// Precedence among states carrying the *same* incarnation: a
    /// stronger claim overrides a weaker one (alive < suspect < dead;
    /// `Left` is terminal and outranks everything).
    pub(crate) fn rank(self) -> u8 {
        match self {
            PeerState::Alive => 0,
            PeerState::Suspect => 1,
            PeerState::Dead => 2,
            PeerState::Left => 3,
        }
    }

    /// Whether this state makes the peer selectable for service work.
    pub fn is_alive(self) -> bool {
        self == PeerState::Alive
    }
}

/// What a peer advertises about itself when it joins (and refreshes as
/// it gossips): the raw material of capacity- and locality-aware
/// selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Advertisement {
    /// Spare attic storage offered to peers, in bytes.
    pub storage_bytes: u64,
    /// Uplink capacity the appliance will commit, in Mbit/s.
    pub uplink_mbps: f64,
    /// Object slots offered to the NoCDN / coop caches.
    pub cache_slots: u32,
    /// RTT from the neighborhood aggregation point, in milliseconds —
    /// the locality proxy used for proximity ranking.
    pub rtt_ms: f64,
}

impl Default for Advertisement {
    fn default() -> Self {
        Advertisement {
            storage_bytes: 50 * 1024 * 1024 * 1024,
            uplink_mbps: 1000.0,
            cache_slots: 1024,
            rtt_ms: 10.0,
        }
    }
}

impl Advertisement {
    /// A dimensionless capacity score used for ranking: committed
    /// uplink weighted by offered storage (log-scaled so one huge disk
    /// does not dominate).
    pub fn capacity_score(&self) -> f64 {
        let storage_gb = (self.storage_bytes as f64 / 1e9).max(1.0);
        self.uplink_mbps * (1.0 + storage_gb.log10())
    }

    /// The same advertisement scaled down by `factor` (clamped to
    /// `[0, 1]`): what an overloaded appliance re-announces so capacity
    /// ranking routes new work around it. Uplink and cache slots shrink
    /// (the resources a flash crowd contends on); durable storage and
    /// rtt — facts about the appliance, not its load — are untouched.
    /// No new wire fields: derating rides the existing advertisement.
    #[must_use]
    pub fn derated(&self, factor: f64) -> Advertisement {
        let f = factor.clamp(0.0, 1.0);
        Advertisement {
            storage_bytes: self.storage_bytes,
            uplink_mbps: self.uplink_mbps * f,
            cache_slots: (self.cache_slots as f64 * f).floor() as u32,
            rtt_ms: self.rtt_ms,
        }
    }
}

/// One observer's belief about one peer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeerRecord {
    /// Who this record describes.
    pub id: PeerId,
    /// Believed liveness state.
    pub state: PeerState,
    /// Incarnation number owned by the described peer; bumped by the
    /// peer itself to refute suspicion when it rejoins.
    pub incarnation: u64,
    /// The peer's capacity/locality advertisement.
    pub advert: Advertisement,
    /// When this belief last changed (sim clock).
    pub updated_at: SimTime,
}

impl PeerRecord {
    /// A fresh alive record at incarnation zero.
    pub fn alive(id: PeerId, advert: Advertisement, now: SimTime) -> PeerRecord {
        PeerRecord {
            id,
            state: PeerState::Alive,
            incarnation: 0,
            advert,
            updated_at: now,
        }
    }
}

/// One appliance's view of the membership: peer id → current belief.
#[derive(Clone, Debug, Default)]
pub struct MembershipTable {
    records: BTreeMap<PeerId, PeerRecord>,
}

impl MembershipTable {
    /// An empty table.
    pub fn new() -> MembershipTable {
        MembershipTable::default()
    }

    /// Number of peers this table knows about (any state).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the table knows no peers.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for `id`, if known.
    pub fn get(&self, id: PeerId) -> Option<&PeerRecord> {
        self.records.get(&id)
    }

    /// Iterates over all records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &PeerRecord> {
        self.records.values()
    }

    /// Ids currently believed alive.
    pub fn alive_ids(&self) -> Vec<PeerId> {
        self.records
            .values()
            .filter(|r| r.state.is_alive())
            .map(|r| r.id)
            .collect()
    }

    /// Inserts or overwrites a record unconditionally (used by the
    /// record's owner — a node always trusts itself).
    pub fn upsert(&mut self, record: PeerRecord) {
        self.records.insert(record.id, record);
    }

    /// Refreshes the owner's own record in place (alive, stamped
    /// `now`) without cloning — the per-tick self-heartbeat.
    pub fn touch_self(&mut self, id: PeerId, now: SimTime) {
        if let Some(r) = self.records.get_mut(&id) {
            r.state = PeerState::Alive;
            r.updated_at = now;
        }
    }

    /// Stamps fresh direct-contact evidence on an alive record without
    /// touching state or incarnation. Keeps liveness timestamps
    /// advancing as records are relayed: `merge_record` rejects
    /// same-incarnation same-state copies, so without this a node's
    /// copy of a third party would stay frozen at first-merge time and
    /// relayed evidence could never move forward.
    pub fn refresh_evidence(&mut self, id: PeerId, now: SimTime) {
        if let Some(r) = self.records.get_mut(&id) {
            if r.state.is_alive() && now > r.updated_at {
                r.updated_at = now;
            }
        }
    }

    /// Merges a gossiped record under SWIM precedence: a higher
    /// incarnation always wins; at equal incarnations the stronger
    /// state claim wins. Returns `true` when the local belief changed
    /// (i.e. the update is worth re-gossiping).
    pub fn merge_record(&mut self, incoming: &PeerRecord) -> bool {
        match self.records.get_mut(&incoming.id) {
            None => {
                self.records.insert(incoming.id, *incoming);
                true
            }
            Some(current) => {
                let newer = incoming.incarnation > current.incarnation
                    || (incoming.incarnation == current.incarnation
                        && incoming.state.rank() > current.state.rank());
                if newer {
                    *current = *incoming;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Changes the believed state of `id` (same incarnation), stamping
    /// the update time. Returns `false` if the peer is unknown or the
    /// transition is a downgrade (e.g. dead → suspect).
    pub fn set_state(&mut self, id: PeerId, state: PeerState, now: SimTime) -> bool {
        match self.records.get_mut(&id) {
            Some(r) if state.rank() > r.state.rank() => {
                r.state = state;
                r.updated_at = now;
                true
            }
            _ => false,
        }
    }

    /// Removes every record in a terminal state (`Dead` / `Left`) that
    /// has been terminal since before `cutoff`. Returns how many were
    /// evicted — dead peers do not linger in memory forever.
    pub fn evict_terminal_before(&mut self, cutoff: SimTime) -> usize {
        let doomed: Vec<PeerId> = self
            .records
            .values()
            .filter(|r| {
                matches!(r.state, PeerState::Dead | PeerState::Left) && r.updated_at < cutoff
            })
            .map(|r| r.id)
            .collect();
        for id in &doomed {
            self.records.remove(id);
        }
        doomed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn rec(id: u64, state: PeerState, inc: u64) -> PeerRecord {
        PeerRecord {
            id: PeerId(id),
            state,
            incarnation: inc,
            advert: Advertisement::default(),
            updated_at: t(0),
        }
    }

    #[test]
    fn merge_prefers_higher_incarnation() {
        let mut m = MembershipTable::new();
        assert!(m.merge_record(&rec(1, PeerState::Dead, 0)));
        // The peer rejoined with a bumped incarnation: alive@1 beats dead@0.
        assert!(m.merge_record(&rec(1, PeerState::Alive, 1)));
        assert_eq!(m.get(PeerId(1)).unwrap().state, PeerState::Alive);
        // Stale dead@0 no longer applies.
        assert!(!m.merge_record(&rec(1, PeerState::Dead, 0)));
        assert_eq!(m.get(PeerId(1)).unwrap().state, PeerState::Alive);
    }

    #[test]
    fn merge_prefers_stronger_state_at_equal_incarnation() {
        let mut m = MembershipTable::new();
        m.merge_record(&rec(1, PeerState::Alive, 3));
        assert!(m.merge_record(&rec(1, PeerState::Suspect, 3)));
        assert!(m.merge_record(&rec(1, PeerState::Dead, 3)));
        // Weaker claims at the same incarnation are ignored.
        assert!(!m.merge_record(&rec(1, PeerState::Alive, 3)));
        assert_eq!(m.get(PeerId(1)).unwrap().state, PeerState::Dead);
    }

    #[test]
    fn set_state_only_upgrades() {
        let mut m = MembershipTable::new();
        m.upsert(PeerRecord::alive(PeerId(1), Advertisement::default(), t(0)));
        assert!(m.set_state(PeerId(1), PeerState::Suspect, t(1)));
        assert!(!m.set_state(PeerId(1), PeerState::Alive, t(2)));
        assert!(m.set_state(PeerId(1), PeerState::Dead, t(3)));
        assert!(!m.set_state(PeerId(9), PeerState::Dead, t(3)));
    }

    #[test]
    fn eviction_reaps_old_terminal_records() {
        let mut m = MembershipTable::new();
        m.upsert(rec(1, PeerState::Dead, 0));
        m.upsert(rec(2, PeerState::Alive, 0));
        let mut dead_old = rec(3, PeerState::Left, 0);
        dead_old.updated_at = t(0);
        m.upsert(dead_old);
        assert_eq!(m.evict_terminal_before(t(5)), 2);
        assert_eq!(m.len(), 1);
        assert!(m.get(PeerId(2)).is_some());
    }

    #[test]
    fn capacity_score_orders_sensibly() {
        let small = Advertisement {
            storage_bytes: 1_000_000_000,
            uplink_mbps: 100.0,
            ..Advertisement::default()
        };
        let big = Advertisement {
            storage_bytes: 1_000_000_000_000,
            uplink_mbps: 1000.0,
            ..Advertisement::default()
        };
        assert!(big.capacity_score() > small.capacity_score());
    }
}
