//! A phi-accrual-flavored failure detector.
//!
//! Instead of a binary timeout, suspicion is a continuous level
//! (Hayashibara et al.'s "phi"): given the history of heartbeat
//! inter-arrival times, `phi(now)` is `-log10` of the probability that
//! a *live* peer would still be silent after the observed gap. A
//! threshold of 8 therefore means "declare suspect when a live peer
//! would produce this silence once in 10^8 gaps".
//!
//! We model inter-arrivals as exponential with the windowed mean —
//! conservative (heavier tail than the normal model the original paper
//! uses), monotone in elapsed silence, and cheap: `phi = (elapsed /
//! mean) · log10(e)`. In a quiet network with regular heartbeats every
//! period, elapsed never exceeds ~1 mean, so phi stays ~0.43 — far
//! below any sane threshold, which is what the zero-false-positive
//! property test pins down.

use hpop_netsim::time::SimTime;
use std::collections::VecDeque;

/// log10(e): converts a natural-log survival exponent into "nines".
const LOG10_E: f64 = std::f64::consts::LOG10_E;

/// Per-peer heartbeat history and suspicion computation.
#[derive(Clone, Debug)]
pub struct PhiDetector {
    /// Recent inter-arrival gaps, seconds (bounded sliding window).
    window: VecDeque<f64>,
    /// Window capacity.
    capacity: usize,
    /// When the last heartbeat arrived.
    last_heartbeat: Option<SimTime>,
    /// Prior mean gap used until the window has real samples.
    prior_mean_s: f64,
}

impl PhiDetector {
    /// A detector with a sliding window of `capacity` gaps and a prior
    /// mean gap of `prior_mean_s` seconds (typically the protocol
    /// period).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the prior is not positive.
    pub fn new(capacity: usize, prior_mean_s: f64) -> PhiDetector {
        assert!(capacity > 0, "detector window must hold at least one gap");
        assert!(
            prior_mean_s > 0.0 && prior_mean_s.is_finite(),
            "prior mean must be positive"
        );
        PhiDetector {
            window: VecDeque::with_capacity(capacity),
            capacity,
            last_heartbeat: None,
            prior_mean_s,
        }
    }

    /// Records evidence of life at `now` (a successful probe, or a
    /// fresh alive record learned through gossip).
    pub fn heartbeat(&mut self, now: SimTime) {
        if let Some(last) = self.last_heartbeat {
            let gap = now.saturating_since(last).as_secs_f64();
            if gap > 0.0 {
                if self.window.len() == self.capacity {
                    self.window.pop_front();
                }
                self.window.push_back(gap);
            }
        }
        self.last_heartbeat = Some(now);
    }

    /// The windowed mean inter-arrival gap (falls back to the prior
    /// until samples exist).
    pub fn mean_gap_s(&self) -> f64 {
        if self.window.is_empty() {
            self.prior_mean_s
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        }
    }

    /// The suspicion level at `now`. Zero before the first heartbeat
    /// (no evidence either way — a brand-new peer is given the benefit
    /// of the doubt for one period).
    pub fn phi(&self, now: SimTime) -> f64 {
        let Some(last) = self.last_heartbeat else {
            return 0.0;
        };
        let elapsed = now.saturating_since(last).as_secs_f64();
        elapsed / self.mean_gap_s() * LOG10_E
    }

    /// Time of the most recent heartbeat, if any.
    pub fn last_heartbeat(&self) -> Option<SimTime> {
        self.last_heartbeat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_netsim::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn phi_is_zero_before_any_heartbeat() {
        let d = PhiDetector::new(8, 1.0);
        assert_eq!(d.phi(t(100)), 0.0);
    }

    #[test]
    fn phi_grows_with_silence() {
        let mut d = PhiDetector::new(8, 1.0);
        for s in 0..5 {
            d.heartbeat(t(s));
        }
        let p1 = d.phi(t(5));
        let p2 = d.phi(t(8));
        let p3 = d.phi(t(30));
        assert!(p1 < p2 && p2 < p3, "{p1} {p2} {p3}");
        // 26 seconds of silence over a 1 s mean gap: ~11.3 "nines".
        assert!(p3 > 8.0);
    }

    #[test]
    fn regular_heartbeats_keep_phi_small() {
        let mut d = PhiDetector::new(8, 1.0);
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            d.heartbeat(now);
            now += SimDuration::from_secs(1);
        }
        // One period of silence after a steady rhythm: phi ≈ log10(e).
        assert!(d.phi(now) < 0.5);
    }

    #[test]
    fn heartbeat_resets_suspicion() {
        let mut d = PhiDetector::new(8, 1.0);
        d.heartbeat(t(0));
        d.heartbeat(t(1));
        assert!(d.phi(t(20)) > 5.0);
        d.heartbeat(t(20));
        assert!(d.phi(t(20)) < 0.1);
    }

    #[test]
    fn window_adapts_to_slower_rhythm() {
        let mut d = PhiDetector::new(4, 1.0);
        // Heartbeats every 10 s: the same absolute silence is far less
        // suspicious than under a 1 s rhythm.
        for s in [0u64, 10, 20, 30, 40] {
            d.heartbeat(t(s));
        }
        assert!((d.mean_gap_s() - 10.0).abs() < 1e-9);
        assert!(d.phi(t(50)) < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one gap")]
    fn zero_capacity_rejected() {
        let _ = PhiDetector::new(0, 1.0);
    }
}
