//! Measures the cost of instrumentation left in hot paths.
//!
//! The contract the `event!` macro must uphold: a *disabled* tracer
//! costs one relaxed atomic load per event site — well under 100 ns —
//! so services can be instrumented unconditionally.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpop_obs::{event, MetricsRegistry, Tracer};

fn bench_trace(c: &mut Criterion) {
    let disabled = Tracer::new(1_024);
    c.bench_function("event_disabled", |b| {
        b.iter(|| {
            event!(
                disabled,
                black_box(42u64),
                "bench",
                "hot.path",
                bytes = black_box(4_096u64),
                ok = true
            );
        })
    });

    let enabled = Tracer::new(1_024);
    enabled.enable();
    c.bench_function("event_enabled_ring_only", |b| {
        b.iter(|| {
            event!(
                enabled,
                black_box(42u64),
                "bench",
                "hot.path",
                bytes = black_box(4_096u64),
                ok = true
            );
        })
    });

    let reg = MetricsRegistry::new();
    let counter = reg.counter("bench.events");
    c.bench_function("counter_add", |b| b.iter(|| counter.add(black_box(1))));

    let hist = reg.histogram("bench.latency_ns");
    c.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(black_box(1_234)))
    });
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
