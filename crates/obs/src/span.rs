//! Causal spans: [`TraceCtx`], [`SpanRecord`], [`SpanTracer`].
//!
//! Where [`crate::trace`] records flat, uncorrelated events, this
//! module records **span trees**: every end-to-end request (a NoCDN
//! object fetch, an attic shard placement, a dcol detour setup, a
//! coop-cache ladder walk) carries a [`TraceCtx`] through the layers it
//! crosses, and each layer closes child spans with a *stage* label
//! (`queue`, `transfer`, `retry`, `hedge`, `verify`,
//! `origin_fallback`, …) over a sim-time interval. The critical-path
//! analyzer in [`crate::critical_path`] then walks the finished trees
//! and says where a slow request's latency actually went.
//!
//! Cost discipline mirrors the event tracer: a disabled [`SpanTracer`]
//! answers [`SpanTracer::root`] with [`TraceCtx::NONE`] after one
//! relaxed atomic load, and every operation on a `NONE` context is a
//! no-op — instrumentation left in hot paths is free until an
//! experiment turns sampling on.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default ring capacity for [`crate::spans`].
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// The causal identity carried by one in-flight operation.
///
/// `trace_id == 0` is the *null* context ([`TraceCtx::NONE`]): the
/// trace was not sampled (or tracing is off) and every span operation
/// derived from it is a no-op. Children of a null context are null, so
/// the sampling decision made at the root propagates for free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Identifier of the whole request tree (0 = unsampled).
    pub trace_id: u64,
    /// This operation's span within the tree.
    pub span_id: u64,
    /// The parent span (0 = this is the root span).
    pub parent_span_id: u64,
}

impl TraceCtx {
    /// The unsampled context: all operations on it are no-ops.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
        parent_span_id: 0,
    };

    /// Whether this context belongs to a sampled trace.
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.trace_id != 0
    }
}

/// One finished span: a stage-labelled sim-time interval in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the tracer).
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_span_id: u64,
    /// Emitting service (`"nocdn"`, `"attic"`, `"resilience"`, …).
    pub service: String,
    /// Stage label (`"request"`, `"transfer"`, `"retry"`, `"hedge"`,
    /// `"verify"`, `"origin_fallback"`, `"queue"`, …).
    pub stage: String,
    /// Interval start, sim-time microseconds.
    pub start_us: u64,
    /// Interval end, sim-time microseconds (>= `start_us`).
    pub end_us: u64,
}

impl SpanRecord {
    /// The span's duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// SplitMix64 — decorrelates sequential trace ids for sampling.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct SpanInner {
    enabled: AtomicBool,
    /// Keep one trace in `sample_one_in` (1 = keep every trace).
    sample_one_in: AtomicU64,
    next_id: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

/// A cheaply cloneable handle to one span stream.
#[derive(Clone)]
pub struct SpanTracer {
    inner: Arc<SpanInner>,
}

impl std::fmt::Debug for SpanTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanTracer")
            .field("enabled", &self.is_enabled())
            .field("buffered", &self.inner.ring.lock().len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl SpanTracer {
    /// A disabled tracer whose ring holds at most `capacity` spans
    /// (oldest dropped first, counted in [`SpanTracer::dropped`]).
    pub fn new(capacity: usize) -> SpanTracer {
        SpanTracer {
            inner: Arc::new(SpanInner {
                enabled: AtomicBool::new(false),
                sample_one_in: AtomicU64::new(1),
                next_id: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::with_capacity(capacity.min(1_024))),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Whether span recording is on (one relaxed atomic load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Starts handing out sampled root contexts.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops sampling new traces (buffered spans are kept; in-flight
    /// sampled contexts still record).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Samples one trace in `n` (deterministic in the trace id); `0`
    /// and `1` both mean "every trace".
    pub fn set_sampling(&self, n: u64) {
        self.inner.sample_one_in.store(n.max(1), Ordering::Relaxed);
    }

    /// Opens a root context for a new end-to-end request. Returns
    /// [`TraceCtx::NONE`] when disabled or when the sampler skips this
    /// trace — both cost O(1) and no allocation.
    pub fn root(&self) -> TraceCtx {
        if !self.is_enabled() {
            return TraceCtx::NONE;
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let one_in = self.inner.sample_one_in.load(Ordering::Relaxed);
        if one_in > 1 && !mix(id).is_multiple_of(one_in) {
            return TraceCtx::NONE;
        }
        TraceCtx {
            trace_id: id,
            span_id: id,
            parent_span_id: 0,
        }
    }

    /// Opens a child context under `parent` (null parent → null child).
    pub fn child(&self, parent: &TraceCtx) -> TraceCtx {
        if !parent.is_sampled() {
            return TraceCtx::NONE;
        }
        TraceCtx {
            trace_id: parent.trace_id,
            span_id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent_span_id: parent.span_id,
        }
    }

    /// Records a finished span for `ctx` (no-op on a null context).
    /// `start_us..end_us` is the sim-time interval; an inverted
    /// interval is clamped to zero width at `start_us`.
    pub fn record(&self, ctx: &TraceCtx, service: &str, stage: &str, start_us: u64, end_us: u64) {
        if !ctx.is_sampled() {
            return;
        }
        let record = SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
            service: service.to_owned(),
            stage: stage.to_owned(),
            start_us,
            end_us: end_us.max(start_us),
        };
        let mut ring = self.inner.ring.lock();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Opens a child context and records it over the interval in one
    /// call — the common shape for leaf stages.
    pub fn record_child(
        &self,
        parent: &TraceCtx,
        service: &str,
        stage: &str,
        start_us: u64,
        end_us: u64,
    ) -> TraceCtx {
        let ctx = self.child(parent);
        self.record(&ctx, service, stage, start_us, end_us);
        ctx
    }

    /// Spans evicted from the ring since the last [`SpanTracer::reset`].
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The buffered spans, oldest first (the ring is left intact).
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// Drains the buffered spans, oldest first.
    pub fn take(&self) -> Vec<SpanRecord> {
        self.inner.ring.lock().drain(..).collect()
    }

    /// Clears the ring and the drop counter (sampling config is kept).
    pub fn reset(&self) {
        self.inner.ring.lock().clear();
        self.inner.dropped.store(0, Ordering::Relaxed);
    }
}

/// A tracer handle plus the context instrumented code should hang
/// children off — what the resilience wrappers thread through calls so
/// deep layers don't need two extra parameters each.
#[derive(Clone, Debug)]
pub struct SpanScope {
    tracer: SpanTracer,
    ctx: TraceCtx,
}

impl SpanScope {
    /// A scope recording children of `ctx` into `tracer`.
    pub fn new(tracer: SpanTracer, ctx: TraceCtx) -> SpanScope {
        SpanScope { tracer, ctx }
    }

    /// The inert scope: nothing is ever recorded. Use as the default
    /// when a caller did not opt into tracing.
    pub fn none() -> SpanScope {
        SpanScope {
            tracer: SpanTracer::new(1),
            ctx: TraceCtx::NONE,
        }
    }

    /// Whether recording through this scope does anything.
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.ctx.is_sampled()
    }

    /// The context children are attached to.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// The underlying tracer.
    pub fn tracer(&self) -> &SpanTracer {
        &self.tracer
    }

    /// Records a leaf child span.
    pub fn record(&self, service: &str, stage: &str, start_us: u64, end_us: u64) {
        self.tracer
            .record_child(&self.ctx, service, stage, start_us, end_us);
    }

    /// A scope one level deeper: records `stage` over the interval and
    /// returns the scope for that child's own children.
    pub fn enter(&self, service: &str, stage: &str, start_us: u64, end_us: u64) -> SpanScope {
        let child = self
            .tracer
            .record_child(&self.ctx, service, stage, start_us, end_us);
        SpanScope {
            tracer: self.tracer.clone(),
            ctx: child,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_hands_out_null_contexts() {
        let t = SpanTracer::new(16);
        let root = t.root();
        assert!(!root.is_sampled());
        t.record(&root, "svc", "request", 0, 10);
        assert!(t.recent().is_empty());
        // Children of null stay null.
        assert!(!t.child(&root).is_sampled());
    }

    #[test]
    fn root_child_record_forms_a_tree() {
        let t = SpanTracer::new(16);
        t.enable();
        let root = t.root();
        assert!(root.is_sampled());
        assert_eq!(root.parent_span_id, 0);
        let child = t.child(&root);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, root.span_id);
        t.record(&child, "nocdn", "transfer", 5, 9);
        t.record(&root, "nocdn", "request", 0, 10);
        let spans = t.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "transfer");
        assert_eq!(spans[1].parent_span_id, 0);
    }

    #[test]
    fn sampling_keeps_a_deterministic_subset() {
        let t = SpanTracer::new(1024);
        t.enable();
        t.set_sampling(4);
        let sampled: Vec<bool> = (0..64).map(|_| t.root().is_sampled()).collect();
        let kept = sampled.iter().filter(|&&s| s).count();
        assert!(kept > 0 && kept < 64, "kept {kept}/64");
        // Same id sequence → same decisions.
        let t2 = SpanTracer::new(1024);
        t2.enable();
        t2.set_sampling(4);
        let again: Vec<bool> = (0..64).map(|_| t2.root().is_sampled()).collect();
        assert_eq!(sampled, again);
    }

    #[test]
    fn ring_overflow_is_counted_not_silent() {
        let t = SpanTracer::new(2);
        t.enable();
        let root = t.root();
        for i in 0..5u64 {
            t.record_child(&root, "svc", "transfer", i, i + 1);
        }
        assert_eq!(t.recent().len(), 2);
        assert_eq!(t.dropped(), 3);
        t.reset();
        assert_eq!(t.dropped(), 0);
        assert!(t.recent().is_empty());
    }

    #[test]
    fn inverted_interval_clamps_to_zero_width() {
        let t = SpanTracer::new(4);
        t.enable();
        let root = t.root();
        t.record(&root, "svc", "request", 10, 3);
        assert_eq!(t.recent()[0].end_us, 10);
    }

    #[test]
    fn scope_enter_nests() {
        let t = SpanTracer::new(16);
        t.enable();
        let root = t.root();
        let scope = SpanScope::new(t.clone(), root);
        let inner = scope.enter("nocdn", "transfer", 0, 8);
        inner.record("resilience", "retry", 2, 4);
        let spans = t.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent_span_id, spans[0].span_id);
        assert_eq!(spans[1].trace_id, root.trace_id);
    }

    #[test]
    fn none_scope_is_inert() {
        let scope = SpanScope::none();
        scope.record("svc", "retry", 0, 1);
        assert!(!scope.is_sampled());
        assert!(scope.tracer().recent().is_empty());
    }
}
