//! A small, dependency-free JSON value model, writer and parser.
//!
//! The build environment has no route to crates.io, so serde is not
//! available; this module provides the subset the observability layer
//! needs: a [`Value`] tree, compact and pretty writers with full string
//! escaping, and a strict recursive-descent parser.
//!
//! Numbers are `f64`; integers round-trip exactly up to 2^53, far above
//! any counter an experiment produces.

use std::fmt::Write as _;

/// A JSON document node. Object keys keep insertion order so exported
/// snapshots are byte-stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object. Panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Value {
        let Value::Obj(entries) = self else {
            panic!("Value::set on non-object");
        };
        let key = key.into();
        let value = value.into();
        if let Some(e) = entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            entries.push((key, value));
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's entries, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(e) => Some(e),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn items(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (numbers with no fractional part).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Human-readable two-space-indented encoding.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Value::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    write_string(out, &entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, d);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Arr(v)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Num(n as f64)
            }
        }
    )*}
}
from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32);

/// Where and why parsing stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = ParserState {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct ParserState<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl ParserState<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(self.err(format!("bad escape \\{}", c as char))),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let mut v = Value::obj();
        v.set("name", "exp_nocdn_offload");
        v.set("count", 42u64);
        v.set("ratio", 0.375f64);
        v.set("ok", true);
        v.set("none", Value::Null);
        v.set(
            "arr",
            Value::Arr(vec![Value::from(1u32), Value::from("two"), Value::Null]),
        );
        for encoded in [v.to_json(), v.to_json_pretty()] {
            assert_eq!(parse(&encoded).expect("parses"), v);
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}f/ü".into());
        assert_eq!(parse(&v.to_json()).expect("parses"), v);
    }

    #[test]
    fn integers_stay_integers() {
        let v = Value::from(9_007_199_254_740_992u64); // 2^53
        assert_eq!(v.to_json(), "9007199254740992");
        assert_eq!(parse("123").expect("parses").as_u64(), Some(123));
        assert_eq!(parse("-1.5e3").expect("parses").as_f64(), Some(-1500.0));
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut v = Value::obj();
        v.set("k", 1u32);
        v.set("k", 2u32);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
        assert_eq!(v.entries().map(|e| e.len()), Some(1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("truthy").is_err());
    }

    #[test]
    fn parses_nested_whitespace() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").expect("parses");
        assert_eq!(v.get("a").and_then(Value::items).map(|i| i.len()), Some(2));
    }
}
