//! The structured trace layer: [`Tracer`], [`TraceEvent`], [`SpanGuard`].
//!
//! A [`Tracer`] records `(sim_time, service, topic, fields)` tuples
//! into a bounded in-memory ring buffer and fans them out to pluggable
//! [`TraceSink`](crate::sink::TraceSink)s. Tracers start **disabled**:
//! the [`event!`](crate::event!) macro checks [`Tracer::is_enabled`]
//! (one relaxed atomic load) before evaluating any field expression,
//! so instrumentation left in hot paths is effectively free until an
//! experiment turns it on.

use crate::json::Value;
use crate::registry::HistogramHandle;
use crate::sink::TraceSink;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default ring-buffer capacity for [`crate::tracer`].
pub const DEFAULT_RING_CAPACITY: usize = 4_096;

/// One structured trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event, in microseconds.
    pub sim_time_us: u64,
    /// Emitting service (`"netsim"`, `"attic"`, `"nocdn"`, …).
    pub service: String,
    /// Dotted event topic (`"chunk.verify"`, `"lock.mediate"`, …).
    pub topic: String,
    /// Structured payload, in field order.
    pub fields: Vec<(String, Value)>,
}

impl TraceEvent {
    /// Encodes the event as a single-line JSON object (the JSONL shape
    /// written by [`crate::sink::JsonlSink`]).
    pub fn to_json(&self) -> String {
        let mut v = Value::obj();
        v.set("t_us", self.sim_time_us);
        v.set("service", self.service.as_str());
        v.set("topic", self.topic.as_str());
        if !self.fields.is_empty() {
            let mut fields = Value::obj();
            for (k, val) in &self.fields {
                fields.set(k.clone(), val.clone());
            }
            v.set("fields", fields);
        }
        v.to_json()
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

struct TracerInner {
    enabled: AtomicBool,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    sinks: Mutex<Vec<Box<dyn TraceSink>>>,
}

/// A cheaply cloneable handle to one trace stream.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("buffered", &self.inner.ring.lock().len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer whose ring holds at most `capacity` events
    /// (oldest dropped first).
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(false),
                dropped: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::with_capacity(capacity.min(1_024))),
                capacity: capacity.max(1),
                sinks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whether events are currently recorded. The `event!` macro calls
    /// this before evaluating fields; keep it trivially cheap.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Starts recording.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording (buffered events are kept).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Appends an event to the ring and offers it to every sink.
    /// Usually called through [`crate::event!`], which gates on
    /// [`Tracer::is_enabled`] first.
    pub fn record(&self, event: TraceEvent) {
        {
            let mut ring = self.inner.ring.lock();
            if ring.len() == self.inner.capacity {
                ring.pop_front();
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(event.clone());
        }
        for sink in self.inner.sinks.lock().iter_mut() {
            sink.record(&event);
        }
    }

    /// Attaches a sink receiving every subsequent event.
    pub fn add_sink(&self, sink: Box<dyn TraceSink>) {
        self.inner.sinks.lock().push(sink);
    }

    /// Detaches all sinks (flushing them) and clears the ring.
    pub fn reset(&self) {
        for sink in self.inner.sinks.lock().iter_mut() {
            sink.flush();
        }
        self.inner.sinks.lock().clear();
        self.inner.ring.lock().clear();
        self.inner.dropped.store(0, Ordering::Relaxed);
    }

    /// Flushes every attached sink.
    pub fn flush(&self) {
        for sink in self.inner.sinks.lock().iter_mut() {
            sink.flush();
        }
    }

    /// The buffered events, oldest first.
    pub fn recent(&self) -> Vec<TraceEvent> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// Events evicted from the ring since the last [`Tracer::reset`].
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

/// Times a scope into a histogram in wall-clock nanoseconds; created by
/// the [`crate::span!`] macro, records on drop.
pub struct SpanGuard<'a> {
    hist: &'a HistogramHandle,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// Starts timing now.
    pub fn new(hist: &'a HistogramHandle) -> SpanGuard<'a> {
        SpanGuard {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_tracer_records_nothing_via_macro() {
        let tracer = Tracer::new(8);
        let mut evaluated = false;
        crate::event!(
            tracer,
            0,
            "svc",
            "topic",
            x = {
                evaluated = true;
                1u64
            }
        );
        assert!(!evaluated, "fields must not be evaluated when disabled");
        assert!(tracer.recent().is_empty());
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let tracer = Tracer::new(3);
        tracer.enable();
        for i in 0..5u64 {
            crate::event!(tracer, i, "svc", "tick", i = i);
        }
        let recent = tracer.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].sim_time_us, 2);
        assert_eq!(tracer.dropped(), 2);
    }

    #[test]
    fn sinks_receive_events() {
        let tracer = Tracer::new(8);
        tracer.enable();
        let sink = MemorySink::new();
        let events = sink.events();
        tracer.add_sink(Box::new(sink));
        crate::event!(tracer, 42, "attic", "lock.mediate", depth = 2u32, ok = true);
        let seen = events.lock();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].topic, "lock.mediate");
        assert_eq!(seen[0].field("depth").and_then(Value::as_u64), Some(2));
        assert_eq!(seen[0].field("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn event_json_shape() {
        let e = TraceEvent {
            sim_time_us: 7,
            service: "nocdn".into(),
            topic: "chunk.fetch".into(),
            fields: vec![("bytes".into(), Value::from(512u64))],
        };
        let parsed = crate::json::parse(&e.to_json()).expect("valid json");
        assert_eq!(parsed.get("t_us").and_then(Value::as_u64), Some(7));
        assert_eq!(parsed.get("service").and_then(Value::as_str), Some("nocdn"));
        assert_eq!(
            parsed
                .get("fields")
                .and_then(|f| f.get("bytes"))
                .and_then(Value::as_u64),
            Some(512)
        );
    }

    #[test]
    fn span_guard_records_duration() {
        let reg = crate::MetricsRegistry::new();
        let hist = reg.histogram("scope_ns");
        {
            let _g = crate::span!(hist);
            std::hint::black_box(0u64);
        }
        assert_eq!(hist.count(), 1);
    }
}
