//! Windowed time-series: breach-resolvable aggregates keyed to sim
//! time.
//!
//! The end-of-run [`Snapshot`](crate::Snapshot) totals answer "how did
//! the run end?" but hide everything that happened and recovered in the
//! middle — a mid-run SLO breach is invisible in a final counter. A
//! [`SeriesHandle`] keeps a bounded ring of **per-window aggregates**
//! (count / sum / min / max over a fixed sim-time window), so an
//! experiment can emit `delivery.ok` per 30-sim-second window and the
//! SLO monitors in [`crate::slo`] can flag exactly *which* windows
//! breached.
//!
//! Windows are keyed purely to the simulated clock, so two runs of a
//! deterministic experiment produce byte-identical series — the
//! harness's `--stable` flag needs to pin nothing here. The ring is
//! bounded: when it overflows, the oldest windows are dropped and
//! counted ([`SeriesHandle::dropped_windows`]), never silently lost.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Default number of windows a series retains.
pub const DEFAULT_WINDOW_CAPACITY: usize = 4_096;

/// One window's aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowAgg {
    /// Window start, sim-time microseconds (multiple of the window
    /// length).
    pub start_us: u64,
    /// Samples recorded in the window.
    pub count: u64,
    /// Sum of sample values.
    pub sum: u64,
    /// Smallest sample value (0 when empty).
    pub min: u64,
    /// Largest sample value (0 when empty).
    pub max: u64,
}

impl WindowAgg {
    fn empty(start_us: u64) -> WindowAgg {
        WindowAgg {
            start_us,
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }
}

struct SeriesCore {
    window_us: u64,
    capacity: usize,
    ring: VecDeque<WindowAgg>,
    dropped_windows: u64,
    /// Samples older than the oldest retained window (discarded).
    late_samples: u64,
}

impl SeriesCore {
    fn window_start(&self, t_us: u64) -> u64 {
        t_us - t_us % self.window_us
    }

    fn record(&mut self, t_us: u64, v: u64) {
        let start = self.window_start(t_us);
        match self.ring.back() {
            None => self.ring.push_back(WindowAgg::empty(start)),
            Some(last) if start > last.start_us => {
                // Materialize intervening empty windows so gaps are
                // visible (and evaluable by SLO monitors), not elided.
                let mut next = last.start_us + self.window_us;
                while next <= start {
                    self.ring.push_back(WindowAgg::empty(next));
                    if self.ring.len() > self.capacity {
                        self.ring.pop_front();
                        self.dropped_windows += 1;
                    }
                    next += self.window_us;
                }
            }
            Some(_) => {}
        }
        // Find the target window (usually the last; occasionally an
        // earlier one for slightly out-of-order samples).
        let front_start = self.ring.front().expect("ring nonempty").start_us;
        if start < front_start {
            // Materialize earlier windows when they still fit in the
            // ring; otherwise the sample is beyond retention — late.
            let back = ((front_start - start) / self.window_us) as usize;
            if self.ring.len() + back > self.capacity {
                self.late_samples += 1;
                return;
            }
            let mut next = front_start;
            while next > start {
                next -= self.window_us;
                self.ring.push_front(WindowAgg::empty(next));
            }
        }
        let front_start = self.ring.front().expect("ring nonempty").start_us;
        let idx = ((start - front_start) / self.window_us) as usize;
        self.ring[idx].record(v);
    }
}

/// A cheaply cloneable handle to one windowed series.
#[derive(Clone)]
pub struct SeriesHandle {
    inner: Arc<Mutex<SeriesCore>>,
}

impl std::fmt::Debug for SeriesHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.inner.lock();
        f.debug_struct("SeriesHandle")
            .field("window_us", &core.window_us)
            .field("windows", &core.ring.len())
            .finish()
    }
}

impl SeriesHandle {
    /// A series with `window_us`-long windows retaining `capacity`
    /// windows.
    pub fn new(window_us: u64, capacity: usize) -> SeriesHandle {
        SeriesHandle {
            inner: Arc::new(Mutex::new(SeriesCore {
                window_us: window_us.max(1),
                capacity: capacity.max(1),
                ring: VecDeque::new(),
                dropped_windows: 0,
                late_samples: 0,
            })),
        }
    }

    /// Records sample `v` at sim time `t_us`.
    pub fn record(&self, t_us: u64, v: u64) {
        self.inner.lock().record(t_us, v);
    }

    /// Records a unit sample (counter-style series).
    pub fn incr(&self, t_us: u64) {
        self.record(t_us, 1);
    }

    /// The window length in microseconds.
    pub fn window_us(&self) -> u64 {
        self.inner.lock().window_us
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> Vec<WindowAgg> {
        self.inner.lock().ring.iter().copied().collect()
    }

    /// Windows evicted because the ring was full.
    pub fn dropped_windows(&self) -> u64 {
        self.inner.lock().dropped_windows
    }

    /// Samples discarded for arriving older than the oldest retained
    /// window.
    pub fn late_samples(&self) -> u64 {
        self.inner.lock().late_samples
    }

    /// The aggregate for the window containing `t_us`, if retained.
    pub fn window_at(&self, t_us: u64) -> Option<WindowAgg> {
        let core = self.inner.lock();
        let start = core.window_start(t_us);
        core.ring.iter().find(|w| w.start_us == start).copied()
    }
}

/// A registry of named series, cloneable like
/// [`MetricsRegistry`](crate::MetricsRegistry).
#[derive(Clone, Default)]
pub struct SeriesRegistry {
    inner: Arc<Mutex<BTreeMap<String, SeriesHandle>>>,
}

impl std::fmt::Debug for SeriesRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesRegistry")
            .field("series", &self.inner.lock().len())
            .finish()
    }
}

impl SeriesRegistry {
    /// An empty registry.
    pub fn new() -> SeriesRegistry {
        SeriesRegistry::default()
    }

    /// The series named `name`, created on first use with `window_us`
    /// windows and the default capacity. The window length of an
    /// existing series is kept (first creation wins).
    pub fn series(&self, name: &str, window_us: u64) -> SeriesHandle {
        self.inner
            .lock()
            .entry(name.to_owned())
            .or_insert_with(|| SeriesHandle::new(window_us, DEFAULT_WINDOW_CAPACITY))
            .clone()
    }

    /// Looks up an existing series without creating it.
    pub fn get(&self, name: &str) -> Option<SeriesHandle> {
        self.inner.lock().get(name).cloned()
    }

    /// All `(name, handle)` pairs, name-ordered.
    pub fn all(&self) -> Vec<(String, SeriesHandle)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Total windows evicted across every series.
    pub fn dropped_windows(&self) -> u64 {
        self.inner
            .lock()
            .values()
            .map(SeriesHandle::dropped_windows)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_aggregate_by_sim_time() {
        let s = SeriesHandle::new(1_000_000, 16); // 1-second windows
        s.record(100, 5);
        s.record(900_000, 7);
        s.record(1_000_000, 1);
        let w = s.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].start_us, 0);
        assert_eq!(w[0].count, 2);
        assert_eq!(w[0].sum, 12);
        assert_eq!(w[0].min, 5);
        assert_eq!(w[0].max, 7);
        assert_eq!(w[1].start_us, 1_000_000);
        assert_eq!(w[1].sum, 1);
    }

    #[test]
    fn gaps_materialize_empty_windows() {
        let s = SeriesHandle::new(1_000_000, 16);
        s.incr(0);
        s.incr(3_500_000);
        let w = s.windows();
        assert_eq!(w.len(), 4);
        assert_eq!(w[1].count, 0);
        assert_eq!(w[2].count, 0);
        assert_eq!(w[3].count, 1);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let s = SeriesHandle::new(1_000_000, 3);
        for sec in 0..6u64 {
            s.incr(sec * 1_000_000);
        }
        let w = s.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].start_us, 3_000_000);
        assert_eq!(s.dropped_windows(), 3);
        // A sample now older than the oldest retained window is late.
        s.incr(0);
        assert_eq!(s.late_samples(), 1);
    }

    #[test]
    fn out_of_order_within_retention_lands_in_its_window() {
        let s = SeriesHandle::new(1_000_000, 16);
        s.incr(2_500_000);
        s.incr(500_000); // older, but retained
        let w = s.windows();
        assert_eq!(w[0].start_us, 0);
        assert_eq!(w[0].count, 1);
        assert_eq!(w[2].count, 1);
        assert_eq!(s.late_samples(), 0);
    }

    #[test]
    fn registry_shares_handles() {
        let reg = SeriesRegistry::new();
        let a = reg.series("delivery.ok", 1_000_000);
        a.incr(10);
        assert_eq!(reg.series("delivery.ok", 999).windows()[0].count, 1);
        // First creation pinned the window length.
        assert_eq!(reg.series("delivery.ok", 999).window_us(), 1_000_000);
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.all().len(), 1);
    }

    #[test]
    fn window_at_finds_the_covering_window() {
        let s = SeriesHandle::new(500_000, 8);
        s.record(750_000, 3);
        let w = s.window_at(999_999).unwrap();
        assert_eq!(w.start_us, 500_000);
        assert_eq!(w.sum, 3);
        assert!(s.window_at(5_000_000).is_none());
    }
}
