//! [`Snapshot`]: a point-in-time export of a registry with a stable
//! JSON schema, used by the `BENCH_<exp>.json` files the experiment
//! binaries write.
//!
//! # Schema (version 2)
//!
//! ```json
//! {
//!   "schema": 2,
//!   "experiment": "nocdn_offload",
//!   "counters": { "flows.completed": 128 },
//!   "gauges": { "link.util": 0.93 },
//!   "histograms": {
//!     "flow.duration_us": {
//!       "count": 128, "min": 11, "max": 90210, "mean": 1732.5,
//!       "p50": 1500, "p90": 4100, "p99": 8800, "saturated": 0
//!     }
//!   },
//!   "latency_attribution": {
//!     "traces_analyzed": 9, "threshold_us": 812000,
//!     "total_us": 7700000, "accounted_us": 7700000,
//!     "stages": { "transfer": 2100000, "retry": 5200000 }
//!   },
//!   "series": {
//!     "delivery.ok": {
//!       "window_us": 30000000, "dropped_windows": 0,
//!       "windows": [
//!         { "t_us": 0, "count": 30, "sum": 30, "min": 1, "max": 1 }
//!       ]
//!     }
//!   },
//!   "slo_breaches": [
//!     { "slo": "delivery-burn", "window_start_us": 30000000,
//!       "window_end_us": 60000000, "value": 9333, "bound": 9900 }
//!   ],
//!   "extra": { "free-form": "experiment-specific results" }
//! }
//! ```
//!
//! Version 2 adds the `latency_attribution`, `series` and
//! `slo_breaches` sections (all optional); version-1 files still parse,
//! with those sections empty. Unknown top-level keys are rejected only
//! by bumping `schema`; readers should tolerate additional histogram
//! fields.

use crate::critical_path::AttributionReport;
use crate::hist::Histogram;
use crate::json::{self, Value};
use crate::series::{SeriesRegistry, WindowAgg};
use crate::slo::{SloBreach, SloMonitor};
use std::collections::BTreeMap;
use std::path::Path;

/// Current snapshot schema version (written by [`Snapshot::to_value`]).
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version [`Snapshot::from_value`] still reads.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Percentile summary of one [`Histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Total recorded values.
    pub count: u64,
    /// Exact minimum recorded value.
    pub min: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Arithmetic mean of recorded values.
    pub mean: f64,
    /// Median (nearest-rank on bucket midpoints).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Values clamped into the top bucket.
    pub saturated: u64,
}

impl HistogramSummary {
    /// Summarises `hist`.
    pub fn of(hist: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: hist.count(),
            min: hist.min(),
            max: hist.max(),
            mean: hist.mean(),
            p50: hist.p50(),
            p90: hist.p90(),
            p99: hist.p99(),
            saturated: hist.saturated(),
        }
    }

    fn to_value(&self) -> Value {
        let mut v = Value::obj();
        v.set("count", self.count);
        v.set("min", self.min);
        v.set("max", self.max);
        v.set("mean", self.mean);
        v.set("p50", self.p50);
        v.set("p90", self.p90);
        v.set("p99", self.p99);
        v.set("saturated", self.saturated);
        v
    }

    fn from_value(v: &Value) -> Result<HistogramSummary, String> {
        let u = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram summary missing u64 field {k:?}"))
        };
        Ok(HistogramSummary {
            count: u("count")?,
            min: u("min")?,
            max: u("max")?,
            mean: v
                .get("mean")
                .and_then(Value::as_f64)
                .ok_or("histogram summary missing f64 field \"mean\"")?,
            p50: u("p50")?,
            p90: u("p90")?,
            p99: u("p99")?,
            saturated: u("saturated")?,
        })
    }
}

/// One exported windowed series (schema v2 `series` section).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesSummary {
    /// Window length, sim-time microseconds.
    pub window_us: u64,
    /// Windows evicted from the bounded ring during the run.
    pub dropped_windows: u64,
    /// Retained windows, oldest first.
    pub windows: Vec<WindowAgg>,
}

/// A complete registry export with a stable JSON representation.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Experiment name this snapshot belongs to.
    pub experiment: String,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name (empty histograms are omitted).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Per-stage latency attribution of the slow-request tail
    /// (schema v2; absent when the run did not trace).
    pub latency_attribution: Option<AttributionReport>,
    /// Windowed time series by name (schema v2).
    pub series: BTreeMap<String, SeriesSummary>,
    /// SLO breach windows recorded during the run (schema v2).
    pub slo_breaches: Vec<SloBreach>,
    /// Free-form experiment-specific results, merged into the JSON
    /// under `"extra"`.
    pub extra: Vec<(String, Value)>,
}

impl Snapshot {
    /// An empty snapshot tagged with `experiment`.
    pub fn new(experiment: &str) -> Snapshot {
        Snapshot {
            experiment: experiment.to_owned(),
            ..Snapshot::default()
        }
    }

    /// Attaches an experiment-specific result under `"extra"`.
    pub fn set_extra(&mut self, key: &str, value: impl Into<Value>) {
        let value = value.into();
        if let Some(slot) = self.extra.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.extra.push((key.to_owned(), value));
        }
    }

    /// Fills the `series` section from every series in `registry`.
    pub fn set_series(&mut self, registry: &SeriesRegistry) {
        for (name, handle) in registry.all() {
            self.series.insert(
                name,
                SeriesSummary {
                    window_us: handle.window_us(),
                    dropped_windows: handle.dropped_windows(),
                    windows: handle.windows(),
                },
            );
        }
    }

    /// Fills the `slo_breaches` section from `monitor`'s record.
    pub fn set_slo_breaches(&mut self, monitor: &SloMonitor) {
        self.slo_breaches = monitor.breaches().to_vec();
    }

    /// The schema-v2 JSON value for this snapshot.
    pub fn to_value(&self) -> Value {
        let mut v = Value::obj();
        v.set("schema", SCHEMA_VERSION);
        v.set("experiment", self.experiment.as_str());
        let mut counters = Value::obj();
        for (k, c) in &self.counters {
            counters.set(k.clone(), *c);
        }
        v.set("counters", counters);
        let mut gauges = Value::obj();
        for (k, g) in &self.gauges {
            gauges.set(k.clone(), *g);
        }
        v.set("gauges", gauges);
        let mut hists = Value::obj();
        for (k, h) in &self.histograms {
            hists.set(k.clone(), h.to_value());
        }
        v.set("histograms", hists);
        if let Some(attr) = &self.latency_attribution {
            v.set("latency_attribution", attribution_to_value(attr));
        }
        if !self.series.is_empty() {
            let mut series = Value::obj();
            for (k, s) in &self.series {
                series.set(k.clone(), series_to_value(s));
            }
            v.set("series", series);
        }
        if !self.slo_breaches.is_empty() {
            v.set(
                "slo_breaches",
                Value::Arr(self.slo_breaches.iter().map(breach_to_value).collect()),
            );
        }
        if !self.extra.is_empty() {
            let mut extra = Value::obj();
            for (k, e) in &self.extra {
                extra.set(k.clone(), e.clone());
            }
            v.set("extra", extra);
        }
        v
    }

    /// Rebuilds a snapshot from its JSON value (schema 1 or 2; v1
    /// files load with the v2 sections empty).
    pub fn from_value(v: &Value) -> Result<Snapshot, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("snapshot missing \"schema\"")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            return Err(format!(
                "unsupported snapshot schema {schema} (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let mut snap = Snapshot::new(
            v.get("experiment")
                .and_then(Value::as_str)
                .ok_or("snapshot missing \"experiment\"")?,
        );
        if let Some(counters) = v.get("counters") {
            for (k, c) in counters
                .entries()
                .ok_or("snapshot \"counters\" is not an object")?
            {
                let c = c
                    .as_u64()
                    .ok_or_else(|| format!("counter {k:?} is not a u64"))?;
                snap.counters.insert(k.clone(), c);
            }
        }
        if let Some(gauges) = v.get("gauges") {
            for (k, g) in gauges
                .entries()
                .ok_or("snapshot \"gauges\" is not an object")?
            {
                let g = g
                    .as_f64()
                    .ok_or_else(|| format!("gauge {k:?} is not a number"))?;
                snap.gauges.insert(k.clone(), g);
            }
        }
        if let Some(hists) = v.get("histograms") {
            for (k, h) in hists
                .entries()
                .ok_or("snapshot \"histograms\" is not an object")?
            {
                snap.histograms
                    .insert(k.clone(), HistogramSummary::from_value(h)?);
            }
        }
        if let Some(attr) = v.get("latency_attribution") {
            snap.latency_attribution = Some(attribution_from_value(attr)?);
        }
        if let Some(series) = v.get("series") {
            for (k, s) in series
                .entries()
                .ok_or("snapshot \"series\" is not an object")?
            {
                snap.series.insert(k.clone(), series_from_value(s)?);
            }
        }
        if let Some(breaches) = v.get("slo_breaches") {
            let items = breaches
                .items()
                .ok_or("snapshot \"slo_breaches\" is not an array")?;
            for b in items {
                snap.slo_breaches.push(breach_from_value(b)?);
            }
        }
        if let Some(extra) = v.get("extra") {
            for (k, e) in extra
                .entries()
                .ok_or("snapshot \"extra\" is not an object")?
            {
                snap.extra.push((k.clone(), e.clone()));
            }
        }
        Ok(snap)
    }

    /// Parses a snapshot from JSON text.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        Snapshot::from_value(&v)
    }

    /// Pretty-printed schema-v1 JSON.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Writes the snapshot to `path` as pretty-printed JSON.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut text = self.to_json_pretty();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Loads a snapshot previously written with [`Snapshot::write_to`].
    pub fn load(path: impl AsRef<Path>) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        Snapshot::parse(&text)
    }
}

fn need_u64(v: &Value, k: &str, what: &str) -> Result<u64, String> {
    v.get(k)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{what} missing u64 field {k:?}"))
}

fn attribution_to_value(a: &AttributionReport) -> Value {
    let mut v = Value::obj();
    v.set("traces_analyzed", a.traces_analyzed);
    v.set("threshold_us", a.threshold_us);
    v.set("total_us", a.total_us);
    v.set("accounted_us", a.accounted_us);
    let mut stages = Value::obj();
    for (k, us) in &a.stages {
        stages.set(k.clone(), *us);
    }
    v.set("stages", stages);
    v
}

fn attribution_from_value(v: &Value) -> Result<AttributionReport, String> {
    let mut a = AttributionReport {
        traces_analyzed: need_u64(v, "traces_analyzed", "latency_attribution")?,
        threshold_us: need_u64(v, "threshold_us", "latency_attribution")?,
        total_us: need_u64(v, "total_us", "latency_attribution")?,
        accounted_us: need_u64(v, "accounted_us", "latency_attribution")?,
        stages: BTreeMap::new(),
    };
    for (k, us) in v
        .get("stages")
        .and_then(|s| s.entries())
        .ok_or("latency_attribution missing \"stages\" object")?
    {
        let us = us
            .as_u64()
            .ok_or_else(|| format!("attribution stage {k:?} is not a u64"))?;
        a.stages.insert(k.clone(), us);
    }
    Ok(a)
}

fn series_to_value(s: &SeriesSummary) -> Value {
    let mut v = Value::obj();
    v.set("window_us", s.window_us);
    v.set("dropped_windows", s.dropped_windows);
    v.set(
        "windows",
        Value::Arr(
            s.windows
                .iter()
                .map(|w| {
                    let mut wv = Value::obj();
                    wv.set("t_us", w.start_us);
                    wv.set("count", w.count);
                    wv.set("sum", w.sum);
                    wv.set("min", w.min);
                    wv.set("max", w.max);
                    wv
                })
                .collect(),
        ),
    );
    v
}

fn series_from_value(v: &Value) -> Result<SeriesSummary, String> {
    let mut s = SeriesSummary {
        window_us: need_u64(v, "window_us", "series")?,
        dropped_windows: need_u64(v, "dropped_windows", "series")?,
        windows: Vec::new(),
    };
    for w in v
        .get("windows")
        .and_then(Value::items)
        .ok_or("series missing \"windows\" array")?
    {
        s.windows.push(WindowAgg {
            start_us: need_u64(w, "t_us", "series window")?,
            count: need_u64(w, "count", "series window")?,
            sum: need_u64(w, "sum", "series window")?,
            min: need_u64(w, "min", "series window")?,
            max: need_u64(w, "max", "series window")?,
        });
    }
    Ok(s)
}

fn breach_to_value(b: &SloBreach) -> Value {
    let mut v = Value::obj();
    v.set("slo", b.slo.as_str());
    v.set("window_start_us", b.window_start_us);
    v.set("window_end_us", b.window_end_us);
    v.set("value", b.value);
    v.set("bound", b.bound);
    v
}

fn breach_from_value(v: &Value) -> Result<SloBreach, String> {
    Ok(SloBreach {
        slo: v
            .get("slo")
            .and_then(Value::as_str)
            .ok_or("slo breach missing \"slo\"")?
            .to_owned(),
        window_start_us: need_u64(v, "window_start_us", "slo breach")?,
        window_end_us: need_u64(v, "window_end_us", "slo breach")?,
        value: need_u64(v, "value", "slo breach")?,
        bound: need_u64(v, "bound", "slo breach")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample_snapshot() -> Snapshot {
        let reg = MetricsRegistry::new();
        reg.counter("flows.completed").add(128);
        reg.gauge("link.util").set(0.93);
        let h = reg.histogram("flow.duration_us");
        for v in [11u64, 1_500, 1_500, 4_100, 90_210] {
            h.record(v);
        }
        let mut snap = reg.snapshot("unit_test");
        snap.set_extra("offload_fraction", 0.42);
        snap
    }

    #[test]
    fn value_roundtrip_preserves_everything() {
        let snap = sample_snapshot();
        let back = Snapshot::from_value(&snap.to_value()).expect("roundtrip");
        assert_eq!(back.experiment, "unit_test");
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
        assert_eq!(back.extra.len(), 1);
    }

    #[test]
    fn written_file_parses_back() {
        let dir = std::env::temp_dir().join("hpop_obs_snapshot_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("BENCH_unit_test.json");
        let snap = sample_snapshot();
        snap.write_to(&path).expect("write");
        let back = Snapshot::load(&path).expect("load");
        assert_eq!(back.counters["flows.completed"], 128);
        assert_eq!(back.gauges["link.util"], 0.93);
        let h = &back.histograms["flow.duration_us"];
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 11);
        assert_eq!(h.max, 90_210);
        assert!(h.p50 > 0 && h.p90 >= h.p50 && h.p99 >= h.p90);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn schema_field_is_enforced() {
        let mut v = sample_snapshot().to_value();
        v.set("schema", 999u64);
        assert!(Snapshot::from_value(&v).is_err());
        let garbage = "{\"experiment\": \"x\"}";
        assert!(Snapshot::parse(garbage).is_err());
    }

    #[test]
    fn v2_sections_roundtrip() {
        let mut snap = sample_snapshot();
        let mut report = AttributionReport {
            traces_analyzed: 3,
            threshold_us: 2_500_000,
            total_us: 9_000_000,
            accounted_us: 8_700_000,
            stages: BTreeMap::new(),
        };
        report.stages.insert("transfer".into(), 6_000_000);
        report.stages.insert("retry".into(), 2_700_000);
        report.stages.insert("request".into(), 300_000);
        snap.latency_attribution = Some(report.clone());

        let reg = SeriesRegistry::new();
        let s = reg.series("delivery.ok", 1_000_000);
        s.record(10, 1);
        s.record(1_500_000, 2);
        snap.set_series(&reg);

        let mut mon = SloMonitor::new(reg.clone());
        mon.add(crate::slo::SloSpec {
            name: "nonzero".into(),
            kind: crate::slo::SloKind::ZeroSum {
                series: "delivery.ok".into(),
            },
        });
        mon.finish(2_000_000);
        snap.set_slo_breaches(&mon);
        assert_eq!(snap.slo_breaches.len(), 2);

        let back = Snapshot::from_value(&snap.to_value()).expect("roundtrip");
        assert_eq!(back.latency_attribution, Some(report));
        assert_eq!(back.series.len(), 1);
        let series = &back.series["delivery.ok"];
        assert_eq!(series.window_us, 1_000_000);
        assert_eq!(series.windows.len(), 2);
        assert_eq!(series.windows[0].sum, 1);
        assert_eq!(series.windows[1].sum, 2);
        assert_eq!(back.slo_breaches, snap.slo_breaches);
    }

    #[test]
    fn v1_snapshot_still_parses() {
        let mut v = sample_snapshot().to_value();
        v.set("schema", 1u64);
        let back = Snapshot::from_value(&v).expect("v1 accepted");
        assert!(back.latency_attribution.is_none());
        assert!(back.series.is_empty());
        assert!(back.slo_breaches.is_empty());
    }

    #[test]
    fn set_extra_replaces() {
        let mut snap = Snapshot::new("x");
        snap.set_extra("k", 1u64);
        snap.set_extra("k", 2u64);
        assert_eq!(snap.extra.len(), 1);
        assert_eq!(snap.extra[0].1.as_u64(), Some(2));
    }
}
