//! [`Snapshot`]: a point-in-time export of a registry with a stable
//! JSON schema, used by the `BENCH_<exp>.json` files the experiment
//! binaries write.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "schema": 1,
//!   "experiment": "nocdn_offload",
//!   "counters": { "flows.completed": 128 },
//!   "gauges": { "link.util": 0.93 },
//!   "histograms": {
//!     "flow.duration_us": {
//!       "count": 128, "min": 11, "max": 90210, "mean": 1732.5,
//!       "p50": 1500, "p90": 4100, "p99": 8800, "saturated": 0
//!     }
//!   },
//!   "extra": { "free-form": "experiment-specific results" }
//! }
//! ```
//!
//! Unknown top-level keys are rejected only by bumping `schema`;
//! readers should tolerate additional histogram fields.

use crate::hist::Histogram;
use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// Current snapshot schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Percentile summary of one [`Histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Total recorded values.
    pub count: u64,
    /// Exact minimum recorded value.
    pub min: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Arithmetic mean of recorded values.
    pub mean: f64,
    /// Median (nearest-rank on bucket midpoints).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Values clamped into the top bucket.
    pub saturated: u64,
}

impl HistogramSummary {
    /// Summarises `hist`.
    pub fn of(hist: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: hist.count(),
            min: hist.min(),
            max: hist.max(),
            mean: hist.mean(),
            p50: hist.p50(),
            p90: hist.p90(),
            p99: hist.p99(),
            saturated: hist.saturated(),
        }
    }

    fn to_value(&self) -> Value {
        let mut v = Value::obj();
        v.set("count", self.count);
        v.set("min", self.min);
        v.set("max", self.max);
        v.set("mean", self.mean);
        v.set("p50", self.p50);
        v.set("p90", self.p90);
        v.set("p99", self.p99);
        v.set("saturated", self.saturated);
        v
    }

    fn from_value(v: &Value) -> Result<HistogramSummary, String> {
        let u = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram summary missing u64 field {k:?}"))
        };
        Ok(HistogramSummary {
            count: u("count")?,
            min: u("min")?,
            max: u("max")?,
            mean: v
                .get("mean")
                .and_then(Value::as_f64)
                .ok_or("histogram summary missing f64 field \"mean\"")?,
            p50: u("p50")?,
            p90: u("p90")?,
            p99: u("p99")?,
            saturated: u("saturated")?,
        })
    }
}

/// A complete registry export with a stable JSON representation.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Experiment name this snapshot belongs to.
    pub experiment: String,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name (empty histograms are omitted).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Free-form experiment-specific results, merged into the JSON
    /// under `"extra"`.
    pub extra: Vec<(String, Value)>,
}

impl Snapshot {
    /// An empty snapshot tagged with `experiment`.
    pub fn new(experiment: &str) -> Snapshot {
        Snapshot {
            experiment: experiment.to_owned(),
            ..Snapshot::default()
        }
    }

    /// Attaches an experiment-specific result under `"extra"`.
    pub fn set_extra(&mut self, key: &str, value: impl Into<Value>) {
        let value = value.into();
        if let Some(slot) = self.extra.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.extra.push((key.to_owned(), value));
        }
    }

    /// The schema-v1 JSON value for this snapshot.
    pub fn to_value(&self) -> Value {
        let mut v = Value::obj();
        v.set("schema", SCHEMA_VERSION);
        v.set("experiment", self.experiment.as_str());
        let mut counters = Value::obj();
        for (k, c) in &self.counters {
            counters.set(k.clone(), *c);
        }
        v.set("counters", counters);
        let mut gauges = Value::obj();
        for (k, g) in &self.gauges {
            gauges.set(k.clone(), *g);
        }
        v.set("gauges", gauges);
        let mut hists = Value::obj();
        for (k, h) in &self.histograms {
            hists.set(k.clone(), h.to_value());
        }
        v.set("histograms", hists);
        if !self.extra.is_empty() {
            let mut extra = Value::obj();
            for (k, e) in &self.extra {
                extra.set(k.clone(), e.clone());
            }
            v.set("extra", extra);
        }
        v
    }

    /// Rebuilds a snapshot from its JSON value.
    pub fn from_value(v: &Value) -> Result<Snapshot, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("snapshot missing \"schema\"")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported snapshot schema {schema} (expected {SCHEMA_VERSION})"
            ));
        }
        let mut snap = Snapshot::new(
            v.get("experiment")
                .and_then(Value::as_str)
                .ok_or("snapshot missing \"experiment\"")?,
        );
        if let Some(counters) = v.get("counters") {
            for (k, c) in counters
                .entries()
                .ok_or("snapshot \"counters\" is not an object")?
            {
                let c = c
                    .as_u64()
                    .ok_or_else(|| format!("counter {k:?} is not a u64"))?;
                snap.counters.insert(k.clone(), c);
            }
        }
        if let Some(gauges) = v.get("gauges") {
            for (k, g) in gauges
                .entries()
                .ok_or("snapshot \"gauges\" is not an object")?
            {
                let g = g
                    .as_f64()
                    .ok_or_else(|| format!("gauge {k:?} is not a number"))?;
                snap.gauges.insert(k.clone(), g);
            }
        }
        if let Some(hists) = v.get("histograms") {
            for (k, h) in hists
                .entries()
                .ok_or("snapshot \"histograms\" is not an object")?
            {
                snap.histograms
                    .insert(k.clone(), HistogramSummary::from_value(h)?);
            }
        }
        if let Some(extra) = v.get("extra") {
            for (k, e) in extra
                .entries()
                .ok_or("snapshot \"extra\" is not an object")?
            {
                snap.extra.push((k.clone(), e.clone()));
            }
        }
        Ok(snap)
    }

    /// Parses a snapshot from JSON text.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        Snapshot::from_value(&v)
    }

    /// Pretty-printed schema-v1 JSON.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Writes the snapshot to `path` as pretty-printed JSON.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut text = self.to_json_pretty();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Loads a snapshot previously written with [`Snapshot::write_to`].
    pub fn load(path: impl AsRef<Path>) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        Snapshot::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample_snapshot() -> Snapshot {
        let reg = MetricsRegistry::new();
        reg.counter("flows.completed").add(128);
        reg.gauge("link.util").set(0.93);
        let h = reg.histogram("flow.duration_us");
        for v in [11u64, 1_500, 1_500, 4_100, 90_210] {
            h.record(v);
        }
        let mut snap = reg.snapshot("unit_test");
        snap.set_extra("offload_fraction", 0.42);
        snap
    }

    #[test]
    fn value_roundtrip_preserves_everything() {
        let snap = sample_snapshot();
        let back = Snapshot::from_value(&snap.to_value()).expect("roundtrip");
        assert_eq!(back.experiment, "unit_test");
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
        assert_eq!(back.extra.len(), 1);
    }

    #[test]
    fn written_file_parses_back() {
        let dir = std::env::temp_dir().join("hpop_obs_snapshot_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("BENCH_unit_test.json");
        let snap = sample_snapshot();
        snap.write_to(&path).expect("write");
        let back = Snapshot::load(&path).expect("load");
        assert_eq!(back.counters["flows.completed"], 128);
        assert_eq!(back.gauges["link.util"], 0.93);
        let h = &back.histograms["flow.duration_us"];
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 11);
        assert_eq!(h.max, 90_210);
        assert!(h.p50 > 0 && h.p90 >= h.p50 && h.p99 >= h.p90);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn schema_field_is_enforced() {
        let mut v = sample_snapshot().to_value();
        v.set("schema", 999u64);
        assert!(Snapshot::from_value(&v).is_err());
        let garbage = "{\"experiment\": \"x\"}";
        assert!(Snapshot::parse(garbage).is_err());
    }

    #[test]
    fn set_extra_replaces() {
        let mut snap = Snapshot::new("x");
        snap.set_extra("k", 1u64);
        snap.set_extra("k", 2u64);
        assert_eq!(snap.extra.len(), 1);
        assert_eq!(snap.extra[0].1.as_u64(), Some(2));
    }
}
