//! A log-linear-bucket histogram over `u64` values.
//!
//! Layout (HdrHistogram-style): values below [`SUBS`] land in exact
//! unit-width buckets; above that, each power-of-two magnitude is split
//! into [`SUBS`] linear sub-buckets, bounding relative quantile error
//! at `1/SUBS` (≈3.1%). Values above the configured maximum saturate
//! into the top bucket (tracked by [`Histogram::saturated`]).
//!
//! Recording is two adds and some bit math — cheap enough for the
//! simulator's hot paths — and histograms [`merge`](Histogram::merge)
//! by element-wise addition, so per-thread shards combine losslessly.

/// Linear sub-buckets per power-of-two magnitude (must be a power of two).
pub const SUBS: u64 = 32;
const SUB_BITS: u32 = SUBS.trailing_zeros();

/// Default maximum trackable value: 2^40 (≈1.1e12), comfortably above
/// any nanosecond latency or byte count an experiment records.
pub const DEFAULT_MAX: u64 = 1 << 40;

/// A mergeable log-linear histogram with exact count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    max_value: u64,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    saturated: u64,
}

fn bucket_count(max_value: u64) -> usize {
    (Histogram::index_of(max_value) + 1) as usize
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A histogram tracking values up to [`DEFAULT_MAX`].
    pub fn new() -> Histogram {
        Histogram::with_max(DEFAULT_MAX)
    }

    /// A histogram tracking values up to `max_value` (rounded to at
    /// least [`SUBS`]); larger recordings saturate into the top bucket.
    pub fn with_max(max_value: u64) -> Histogram {
        let max_value = max_value.max(SUBS);
        Histogram {
            max_value,
            counts: vec![0; bucket_count(max_value)],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            saturated: 0,
        }
    }

    /// The bucket index covering `v` (unbounded layout).
    fn index_of(v: u64) -> u64 {
        if v < SUBS {
            v
        } else {
            let e = 63 - v.leading_zeros() as u64; // e >= SUB_BITS
            let sub = (v >> (e - SUB_BITS as u64)) & (SUBS - 1);
            SUBS + (e - SUB_BITS as u64) * SUBS + sub
        }
    }

    /// Inclusive lower bound of bucket `i`.
    fn lower_bound(i: u64) -> u64 {
        if i < SUBS {
            i
        } else {
            let g = (i - SUBS) / SUBS;
            let sub = (i - SUBS) % SUBS;
            (SUBS + sub) << g
        }
    }

    /// Exclusive upper bound of bucket `i`.
    fn upper_bound(i: u64) -> u64 {
        if i < SUBS {
            i + 1
        } else {
            let g = (i - SUBS) / SUBS;
            let sub = (i - SUBS) % SUBS;
            (SUBS + sub + 1) << g
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let clamped = if v > self.max_value {
            self.saturated += n;
            self.max_value
        } else {
            v
        };
        let idx = Self::index_of(clamped) as usize;
        self.counts[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded value; zero when empty.
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value; zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of recordings that exceeded the trackable maximum.
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// The configured maximum trackable value.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// The value at quantile `q` in `[0, 1]` by nearest rank; zero when
    /// empty. Exact for values below [`SUBS`]; within `1/SUBS` relative
    /// error above (the bucket midpoint is reported).
    ///
    /// The reported value is a strictly monotone function of the
    /// rank's bucket — deliberately *not* clamped to the exact min/max,
    /// which keeps quantiles of a [`merge`](Histogram::merge) bounded
    /// by the inputs' quantiles (clamping can violate that by up to a
    /// bucket width). Use [`Histogram::min`]/[`Histogram::max`] for the
    /// exact extremes.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.is_empty() {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let i = i as u64;
                return if i < SUBS {
                    i // exact bucket
                } else {
                    (Self::lower_bound(i) + Self::upper_bound(i) - 1) / 2
                };
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.value_at_quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Element-wise merge of another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms were configured with different maxima.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.max_value, other.max_value,
            "merging histograms with different maxima"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.saturated += other.saturated;
    }

    /// Non-empty buckets as `(lower_bound, upper_bound_exclusive, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(i, &c)| {
            let i = i as u64;
            (c > 0).then_some((Self::lower_bound(i), Self::upper_bound(i), c))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_tight_and_contiguous() {
        // Every value maps into a bucket whose [lower, upper) contains it.
        for v in (0..10_000u64).chain([1 << 20, (1 << 30) + 12345, 1 << 39]) {
            let i = Histogram::index_of(v);
            assert!(
                Histogram::lower_bound(i) <= v && v < Histogram::upper_bound(i),
                "value {v} not inside bucket {i}"
            );
        }
        // Buckets tile the line with no gaps or overlaps.
        for i in 0..bucket_count(DEFAULT_MAX) as u64 - 1 {
            assert_eq!(Histogram::upper_bound(i), Histogram::lower_bound(i + 1));
        }
    }

    #[test]
    fn exact_percentiles_on_small_values() {
        // Values below SUBS are bucketed exactly: 1..=100 clamps to <32
        // only partially, so use 0..SUBS for the exact regime.
        let mut h = Histogram::new();
        for v in 0..SUBS {
            h.record(v); // one each of 0..=31
        }
        assert_eq!(h.p50(), 15); // rank 16 of 32
        assert_eq!(h.p90(), 28); // rank ceil(0.9*32)=29 -> value 28
        assert_eq!(h.p99(), 31); // rank 32 -> value 31
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn known_distribution_1_to_100() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Above SUBS the bucket midpoint is reported; bound the error
        // by the documented 1/SUBS relative width.
        for (q, exact) in [(0.5, 50u64), (0.9, 90), (0.99, 99), (1.0, 100)] {
            let got = h.value_at_quantile(q);
            let tol = (exact as f64 / SUBS as f64).ceil() as u64 + 1;
            assert!(
                got.abs_diff(exact) <= tol,
                "q={q}: got {got}, want {exact}±{tol}"
            );
        }
        assert_eq!(h.value_at_quantile(0.0), 1);
        assert_eq!(h.value_at_quantile(1.0), 100); // 100's bucket midpoint is exact
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
    }

    #[test]
    fn top_bucket_saturates() {
        let mut h = Histogram::with_max(1 << 20);
        h.record(5);
        h.record(u64::MAX);
        h.record((1 << 20) + 1);
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.count(), 3);
        // Saturated values count toward the top bucket's quantiles.
        assert!(h.p99() >= 1 << 20);
        // Exact max is still reported.
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [1u64, 5, 900, 40_000, 7] {
            a.record(v);
            whole.record(v);
        }
        for v in [2u64, 3_000_000, 12] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    proptest! {
        /// Merged percentiles are bounded by the inputs: for any
        /// quantile, min(pA, pB) <= p(A∪B) <= max(pA, pB) — a merge can
        /// never produce a percentile outside its inputs' envelope.
        #[test]
        fn merge_percentiles_bound_the_inputs(
            xs in proptest::collection::vec(0u64..2_000_000, 1..200),
            ys in proptest::collection::vec(0u64..2_000_000, 1..200),
            q in 0.0f64..=1.0,
        ) {
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            for &x in &xs { a.record(x); }
            for &y in &ys { b.record(y); }
            let (pa, pb) = (a.value_at_quantile(q), b.value_at_quantile(q));
            let mut merged = a.clone();
            merged.merge(&b);
            let pm = merged.value_at_quantile(q);
            prop_assert!(pm >= pa.min(pb), "q={}: merged {} < min({}, {})", q, pm, pa, pb);
            prop_assert!(pm <= pa.max(pb), "q={}: merged {} > max({}, {})", q, pm, pa, pb);
            // Merge bookkeeping is exact.
            prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
            prop_assert_eq!(merged.min(), a.min().min(b.min()));
            prop_assert_eq!(merged.max(), a.max().max(b.max()));
        }

        /// Quantiles are monotone in q and stay within [min, max].
        #[test]
        fn quantiles_monotone_and_bounded(
            xs in proptest::collection::vec(0u64..10_000_000, 1..300),
        ) {
            let mut h = Histogram::new();
            for &x in &xs { h.record(x); }
            let mut prev = 0u64;
            for i in 0..=20u32 {
                let q = i as f64 / 20.0;
                let v = h.value_at_quantile(q);
                prop_assert!(v >= prev, "quantile dipped at q={}", q);
                // Unclamped quantiles report bucket midpoints, so they
                // are bounded by the extremes' bucket bounds, not the
                // exact extremes.
                let lo = Histogram::lower_bound(Histogram::index_of(h.min()));
                let hi = Histogram::upper_bound(Histogram::index_of(h.max()));
                prop_assert!(v >= lo && v < hi, "q={} v={} outside [{}, {})", q, v, lo, hi);
                prev = v;
            }
        }
    }
}
