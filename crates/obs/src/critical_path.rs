//! Critical-path analysis over finished span trees.
//!
//! Given the [`SpanRecord`]s drained from a [`SpanTracer`], this module
//! groups them into per-trace trees, checks the trees are well formed
//! (children nested inside their parent's sim-time interval, exactly
//! one root, no orphans), and answers the question the flat metrics
//! cannot: **which stage did a slow request actually spend its time
//! in?**
//!
//! Attribution uses a *deepest-wins sweep*: every microsecond of the
//! root interval is charged to the deepest span covering it (ties go to
//! the later-created span), so the per-stage totals always partition
//! the root duration exactly — nothing is double-counted and nothing
//! goes missing. Time no child claims is charged to the root's own
//! stage, which makes "unattributed" latency visible as the root
//! stage's share rather than silently vanishing.

use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// One request's spans, grouped and indexed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceTree {
    /// The trace id shared by every span.
    pub trace_id: u64,
    /// All spans of the trace, in recording order; `spans[root]` is
    /// the root span.
    pub spans: Vec<SpanRecord>,
    root: usize,
}

/// Why a trace is not a well-formed tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// No span with `parent_span_id == 0`.
    NoRoot,
    /// More than one root span.
    MultipleRoots,
    /// A span references a parent id that is not in the trace.
    Orphan {
        /// The orphaned span's id.
        span_id: u64,
    },
    /// A child's interval is not contained in its parent's.
    NotNested {
        /// The offending child span's id.
        span_id: u64,
    },
    /// Two spans share one span id.
    DuplicateSpanId {
        /// The duplicated id.
        span_id: u64,
    },
    /// A span's parent chain never reaches the root (parent cycle).
    Cycle {
        /// A span on the unreachable cycle.
        span_id: u64,
    },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::NoRoot => write!(f, "trace has no root span"),
            TreeError::MultipleRoots => write!(f, "trace has multiple root spans"),
            TreeError::Orphan { span_id } => {
                write!(f, "span {span_id} references a missing parent")
            }
            TreeError::NotNested { span_id } => {
                write!(
                    f,
                    "span {span_id} is not nested inside its parent's interval"
                )
            }
            TreeError::DuplicateSpanId { span_id } => {
                write!(f, "span id {span_id} appears more than once")
            }
            TreeError::Cycle { span_id } => {
                write!(
                    f,
                    "span {span_id}'s parent chain cycles and never reaches the root"
                )
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Groups a flat span dump into per-trace trees, skipping traces that
/// fail [`TraceTree::validate`]; returns `(trees, malformed_count)`.
pub fn build_traces(records: &[SpanRecord]) -> (Vec<TraceTree>, usize) {
    let mut by_trace: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for r in records {
        by_trace.entry(r.trace_id).or_default().push(r.clone());
    }
    let mut trees = Vec::new();
    let mut malformed = 0usize;
    for (trace_id, spans) in by_trace {
        match TraceTree::new(trace_id, spans) {
            Ok(t) => trees.push(t),
            Err(_) => malformed += 1,
        }
    }
    (trees, malformed)
}

impl TraceTree {
    /// Builds and validates one trace's tree.
    ///
    /// # Errors
    ///
    /// The first [`TreeError`] found (missing/duplicate root, orphan
    /// parent reference, duplicated span id, child escaping its
    /// parent's interval).
    pub fn new(trace_id: u64, spans: Vec<SpanRecord>) -> Result<TraceTree, TreeError> {
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            if by_id.insert(s.span_id, i).is_some() {
                return Err(TreeError::DuplicateSpanId { span_id: s.span_id });
            }
        }
        let mut root = None;
        for (i, s) in spans.iter().enumerate() {
            if s.parent_span_id == 0 {
                if root.is_some() {
                    return Err(TreeError::MultipleRoots);
                }
                root = Some(i);
            } else {
                let Some(&p) = by_id.get(&s.parent_span_id) else {
                    return Err(TreeError::Orphan { span_id: s.span_id });
                };
                let parent = &spans[p];
                if s.start_us < parent.start_us || s.end_us > parent.end_us {
                    return Err(TreeError::NotNested { span_id: s.span_id });
                }
            }
        }
        let Some(root) = root else {
            return Err(TreeError::NoRoot);
        };
        // Orphan checks above only prove every parent id *exists*; a
        // parent cycle (e.g. a span naming itself) would still pass and
        // then hang the depth walk. Require reachability from the root.
        let mut reached = vec![false; spans.len()];
        reached[root] = true;
        let mut grew = true;
        while grew {
            grew = false;
            for (i, s) in spans.iter().enumerate() {
                if !reached[i] && s.parent_span_id != 0 && reached[by_id[&s.parent_span_id]] {
                    reached[i] = true;
                    grew = true;
                }
            }
        }
        if let Some(i) = reached.iter().position(|r| !r) {
            return Err(TreeError::Cycle {
                span_id: spans[i].span_id,
            });
        }
        Ok(TraceTree {
            trace_id,
            spans,
            root,
        })
    }

    /// The root span.
    pub fn root(&self) -> &SpanRecord {
        &self.spans[self.root]
    }

    /// End-to-end duration of the request, microseconds.
    pub fn duration_us(&self) -> u64 {
        self.root().duration_us()
    }

    /// Depth of span `i` (root = 0). The tree is validated, so parent
    /// chains terminate.
    fn depth(&self, mut i: usize) -> usize {
        let by_id: BTreeMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(j, s)| (s.span_id, j))
            .collect();
        let mut d = 0;
        while self.spans[i].parent_span_id != 0 {
            i = by_id[&self.spans[i].parent_span_id];
            d += 1;
        }
        d
    }

    /// Per-stage attribution of the root interval via the deepest-wins
    /// sweep. The returned totals (microseconds) always sum exactly to
    /// [`TraceTree::duration_us`].
    pub fn attribution(&self) -> BTreeMap<String, u64> {
        let root = self.root();
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        if root.duration_us() == 0 {
            return out;
        }
        // Elementary intervals between all span boundaries.
        let mut cuts: Vec<u64> = Vec::with_capacity(self.spans.len() * 2);
        for s in &self.spans {
            cuts.push(s.start_us.clamp(root.start_us, root.end_us));
            cuts.push(s.end_us.clamp(root.start_us, root.end_us));
        }
        cuts.sort_unstable();
        cuts.dedup();
        let depths: Vec<usize> = (0..self.spans.len()).map(|i| self.depth(i)).collect();
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a == b {
                continue;
            }
            // The deepest span covering [a, b); ties to the later
            // (higher-id) span so siblings split deterministically.
            let mut best: Option<usize> = None;
            for (i, s) in self.spans.iter().enumerate() {
                if s.start_us <= a && s.end_us >= b {
                    best = match best {
                        None => Some(i),
                        Some(j)
                            if (depths[i], self.spans[i].span_id)
                                > (depths[j], self.spans[j].span_id) =>
                        {
                            Some(i)
                        }
                        keep => keep,
                    };
                }
            }
            let winner = best.expect("root covers its whole interval");
            *out.entry(self.spans[winner].stage.clone()).or_default() += b - a;
        }
        out
    }
}

/// Aggregated attribution across the slow tail of many traces.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttributionReport {
    /// Traces that met the slowness threshold and were analyzed.
    pub traces_analyzed: u64,
    /// The root-duration threshold that selected them, microseconds.
    pub threshold_us: u64,
    /// Sum of analyzed root durations, microseconds.
    pub total_us: u64,
    /// Microseconds the sweep attributed to *some* stage (equals
    /// `total_us` by construction; kept separate so the snapshot check
    /// can prove it).
    pub accounted_us: u64,
    /// Per-stage attributed microseconds.
    pub stages: BTreeMap<String, u64>,
}

impl AttributionReport {
    /// Attributed share of the analyzed time, in basis points.
    pub fn accounted_bp(&self) -> u64 {
        if self.total_us == 0 {
            return 10_000;
        }
        self.accounted_us * 10_000 / self.total_us
    }
}

/// Analyzes the traces whose end-to-end duration is at or above the
/// `quantile` (e.g. `0.99`) of all root durations — "where does the
/// p99 come from?" — and sums their per-stage attribution.
pub fn attribute_slow(trees: &[TraceTree], quantile: f64) -> AttributionReport {
    let mut report = AttributionReport::default();
    if trees.is_empty() {
        return report;
    }
    let mut durations: Vec<u64> = trees.iter().map(TraceTree::duration_us).collect();
    durations.sort_unstable();
    let q = quantile.clamp(0.0, 1.0);
    let idx = ((durations.len() - 1) as f64 * q).round() as usize;
    report.threshold_us = durations[idx.min(durations.len() - 1)];
    for t in trees
        .iter()
        .filter(|t| t.duration_us() >= report.threshold_us)
    {
        report.traces_analyzed += 1;
        report.total_us += t.duration_us();
        for (stage, us) in t.attribution() {
            report.accounted_us += us;
            *report.stages.entry(stage).or_default() += us;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanTracer;

    fn span(trace: u64, id: u64, parent: u64, stage: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span_id: parent,
            service: "test".into(),
            stage: stage.into(),
            start_us: start,
            end_us: end,
        }
    }

    #[test]
    fn attribution_partitions_the_root_exactly() {
        // request [0,100] with transfer [10,60], retry [60,80]; the
        // transfer has a nested hedge [40,60].
        let spans = vec![
            span(1, 1, 0, "request", 0, 100),
            span(1, 2, 1, "transfer", 10, 60),
            span(1, 3, 1, "retry", 60, 80),
            span(1, 4, 2, "hedge", 40, 60),
        ];
        let t = TraceTree::new(1, spans).unwrap();
        let a = t.attribution();
        assert_eq!(a["request"], 30); // [0,10) + [80,100)
        assert_eq!(a["transfer"], 30); // [10,40)
        assert_eq!(a["hedge"], 20); // [40,60) — deepest wins
        assert_eq!(a["retry"], 20);
        assert_eq!(a.values().sum::<u64>(), t.duration_us());
    }

    #[test]
    fn sibling_overlap_resolves_to_later_span() {
        let spans = vec![
            span(1, 1, 0, "request", 0, 10),
            span(1, 2, 1, "transfer", 0, 10),
            span(1, 3, 1, "hedge", 5, 10),
        ];
        let t = TraceTree::new(1, spans).unwrap();
        let a = t.attribution();
        assert_eq!(a["transfer"], 5);
        assert_eq!(a["hedge"], 5);
    }

    #[test]
    fn malformed_trees_are_rejected() {
        assert_eq!(
            TraceTree::new(1, vec![span(1, 2, 9, "x", 0, 1)]),
            Err(TreeError::Orphan { span_id: 2 })
        );
        assert_eq!(TraceTree::new(1, vec![]).unwrap_err(), TreeError::NoRoot);
        assert_eq!(
            TraceTree::new(1, vec![span(1, 1, 0, "a", 0, 5), span(1, 2, 0, "b", 0, 5)])
                .unwrap_err(),
            TreeError::MultipleRoots
        );
        assert_eq!(
            TraceTree::new(1, vec![span(1, 1, 0, "a", 5, 9), span(1, 2, 1, "b", 4, 9)])
                .unwrap_err(),
            TreeError::NotNested { span_id: 2 }
        );
        assert_eq!(
            TraceTree::new(1, vec![span(1, 1, 0, "a", 0, 9), span(1, 1, 1, "b", 1, 2)])
                .unwrap_err(),
            TreeError::DuplicateSpanId { span_id: 1 }
        );
        // Self-parent: every parent id exists, but the chain cycles.
        assert_eq!(
            TraceTree::new(1, vec![span(1, 1, 0, "a", 0, 9), span(1, 2, 2, "b", 1, 2)])
                .unwrap_err(),
            TreeError::Cycle { span_id: 2 }
        );
        // Two-span cycle hanging off a valid root.
        assert_eq!(
            TraceTree::new(
                1,
                vec![
                    span(1, 1, 0, "a", 0, 9),
                    span(1, 2, 3, "b", 1, 2),
                    span(1, 3, 2, "c", 1, 2),
                ]
            )
            .unwrap_err(),
            TreeError::Cycle { span_id: 2 }
        );
    }

    #[test]
    fn build_traces_groups_and_counts_malformed() {
        let mut records = vec![
            span(1, 1, 0, "request", 0, 10),
            span(2, 4, 0, "request", 0, 20),
            span(2, 5, 4, "transfer", 5, 15),
        ];
        records.push(span(3, 9, 77, "orphan", 0, 1));
        let (trees, malformed) = build_traces(&records);
        assert_eq!(trees.len(), 2);
        assert_eq!(malformed, 1);
        assert_eq!(trees[1].duration_us(), 20);
    }

    #[test]
    fn attribute_slow_selects_the_tail() {
        let mut records = Vec::new();
        for t in 1..=100u64 {
            // Trace t runs [0, t]: durations 1..=100 us.
            records.push(span(t, t * 10, 0, "request", 0, t));
            records.push(span(t, t * 10 + 1, t * 10, "transfer", 0, t / 2));
        }
        let (trees, _) = build_traces(&records);
        let report = attribute_slow(&trees, 0.99);
        assert_eq!(report.threshold_us, 99);
        assert_eq!(report.traces_analyzed, 2); // 99 and 100
        assert_eq!(report.total_us, 199);
        assert_eq!(report.accounted_us, report.total_us);
        assert_eq!(report.accounted_bp(), 10_000);
        assert!(report.stages["transfer"] > 0 && report.stages["request"] > 0);
    }

    #[test]
    fn tracer_output_feeds_straight_into_analysis() {
        let tracer = SpanTracer::new(64);
        tracer.enable();
        let root = tracer.root();
        tracer.record_child(&root, "nocdn", "transfer", 2, 7);
        tracer.record(&root, "nocdn", "request", 0, 10);
        let (trees, malformed) = build_traces(&tracer.take());
        assert_eq!(malformed, 0);
        assert_eq!(trees.len(), 1);
        let a = trees[0].attribution();
        assert_eq!(a["transfer"], 5);
        assert_eq!(a["request"], 5);
    }
}
