//! [`MetricsRegistry`]: named counters, gauges and histograms shared
//! across threads.
//!
//! The registry is an `Arc` around its tables, so clones are cheap and
//! all clones observe the same metrics. Handles returned by
//! [`counter`](MetricsRegistry::counter) /
//! [`gauge`](MetricsRegistry::gauge) /
//! [`histogram`](MetricsRegistry::histogram) are themselves `Arc`s of
//! the underlying cell: look a metric up once outside the hot loop,
//! then update lock-free (counters/gauges) or under a short mutex
//! (histograms). Per-thread histogram shards can be folded in with
//! [`HistogramHandle::merge_from`].

use crate::hist::Histogram;
use crate::snapshot::Snapshot;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared monotonic counter.
#[derive(Clone, Debug, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared last-value-wins gauge (stored as `f64` bits).
#[derive(Clone, Debug, Default)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A shared histogram (short critical section per record).
#[derive(Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.lock().record(v);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&self, v: u64, n: u64) {
        self.0.lock().record_n(v, n);
    }

    /// Folds a locally accumulated shard into the shared histogram.
    pub fn merge_from(&self, shard: &Histogram) {
        self.0.lock().merge(shard);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.0.lock().count()
    }

    /// A point-in-time copy (for assertions and summaries).
    pub fn load(&self) -> Histogram {
        self.0.lock().clone()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, CounterHandle>>,
    gauges: Mutex<BTreeMap<String, GaugeHandle>>,
    histograms: Mutex<BTreeMap<String, HistogramHandle>>,
}

/// The shared registry. Clone freely; clones are views of one registry.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.lock().len())
            .field("gauges", &self.inner.gauges.lock().len())
            .field("histograms", &self.inner.histograms.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> CounterHandle {
        let mut map = self.inner.counters.lock();
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        let mut map = self.inner.gauges.lock();
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram named `name`, created on first use with the
    /// default value range.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.inner.histograms.lock();
        map.entry(name.to_owned())
            .or_insert_with(|| HistogramHandle(Arc::new(Mutex::new(Histogram::new()))))
            .clone()
    }

    /// Names of all registered counters/gauges/histograms.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.counters.lock().keys().cloned().collect();
        names.extend(self.inner.gauges.lock().keys().cloned());
        names.extend(self.inner.histograms.lock().keys().cloned());
        names.sort();
        names.dedup();
        names
    }

    /// A point-in-time [`Snapshot`] of every metric, tagged with the
    /// experiment name.
    pub fn snapshot(&self, experiment: &str) -> Snapshot {
        let mut snap = Snapshot::new(experiment);
        for (name, c) in self.inner.counters.lock().iter() {
            snap.counters.insert(name.clone(), c.get());
        }
        for (name, g) in self.inner.gauges.lock().iter() {
            snap.gauges.insert(name.clone(), g.get());
        }
        for (name, h) in self.inner.histograms.lock().iter() {
            let hist = h.0.lock();
            if !hist.is_empty() {
                snap.histograms
                    .insert(name.clone(), crate::snapshot::HistogramSummary::of(&hist));
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn handles_share_state_across_clones() {
        let reg = MetricsRegistry::new();
        let view = reg.clone();
        reg.counter("flows.started").add(3);
        view.counter("flows.started").incr();
        assert_eq!(reg.counter("flows.started").get(), 4);
        view.gauge("util").set(0.75);
        assert_eq!(reg.gauge("util").get(), 0.75);
    }

    #[test]
    fn sharded_across_threads() {
        let reg = MetricsRegistry::new();
        let mut joins = Vec::new();
        for t in 0..4 {
            let reg = reg.clone();
            joins.push(thread::spawn(move || {
                let c = reg.counter("events");
                let h = reg.histogram("latency_ns");
                // Local shard merged at the end: the hot loop touches
                // no shared lock.
                let mut shard = crate::hist::Histogram::new();
                for i in 0..1_000u64 {
                    c.incr();
                    shard.record(t * 1_000 + i);
                }
                h.merge_from(&shard);
            }));
        }
        for j in joins {
            j.join().expect("thread");
        }
        assert_eq!(reg.counter("events").get(), 4_000);
        assert_eq!(reg.histogram("latency_ns").count(), 4_000);
    }

    #[test]
    fn snapshot_collects_everything() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(7);
        reg.gauge("b.ratio").set(0.5);
        reg.histogram("c.ns").record(100);
        reg.histogram("empty.ns"); // never recorded: omitted
        let snap = reg.snapshot("unit");
        assert_eq!(snap.counters["a.count"], 7);
        assert_eq!(snap.gauges["b.ratio"], 0.5);
        assert_eq!(snap.histograms["c.ns"].count, 1);
        assert!(!snap.histograms.contains_key("empty.ns"));
    }
}
