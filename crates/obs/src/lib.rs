//! # hpop-obs — structured observability for the HPoP stack
//!
//! The paper's evaluation style is observational: the CCZ study (§II)
//! and every service sketch (§IV) argue from per-second rates,
//! percentiles and event traces. This crate is the substrate that lets
//! every other crate produce those artifacts uniformly:
//!
//! - [`registry::MetricsRegistry`] — named counters, gauges and
//!   log-linear-bucket histograms (p50/p90/p99), cheaply cloneable and
//!   shardable across threads.
//! - [`trace`] — a structured trace layer: the [`event!`] macro records
//!   `(sim_time, service, topic, fields)` tuples into a bounded ring
//!   buffer with pluggable sinks ([`sink::MemorySink`] for tests,
//!   [`sink::JsonlSink`] for experiments). A disabled tracer costs one
//!   relaxed atomic load per event site.
//! - [`span`] — causal tracing: a [`span::TraceCtx`] propagated through
//!   messages ties every stage of a request (queue, transfer, retry,
//!   hedge, verify, origin fallback) into one span tree over sim time;
//!   [`critical_path`] walks those trees and attributes a slow
//!   request's latency to the stages actually on its critical path.
//! - [`series`] / [`slo`] — windowed time-series keyed to sim time and
//!   declarative SLO monitors (burn-rate floors, latency ceilings,
//!   zero-sum invariants) evaluated continuously, with breach windows
//!   recorded in the snapshot.
//! - [`snapshot::Snapshot`] — a stable JSON schema for experiment
//!   results; every `exp_*` binary exports one as `BENCH_<exp>.json`.
//!
//! The crate is dependency-free beyond `std` + `parking_lot` (the build
//! environment is offline), so JSON encoding/decoding is provided by
//! the in-tree [`json`] module rather than serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical_path;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod series;
pub mod sink;
pub mod slo;
pub mod snapshot;
pub mod span;

#[cfg(test)]
mod proptests;
pub mod trace;

pub use critical_path::{attribute_slow, build_traces, AttributionReport, TraceTree};
pub use hist::Histogram;
pub use metrics::{Cdf, Counter};
pub use registry::{CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry};
pub use series::{SeriesHandle, SeriesRegistry, WindowAgg};
pub use slo::{SloBreach, SloKind, SloMonitor, SloSpec};
pub use snapshot::{HistogramSummary, SeriesSummary, Snapshot};
pub use span::{SpanRecord, SpanScope, SpanTracer, TraceCtx};
pub use trace::{SpanGuard, TraceEvent, Tracer};

use std::sync::OnceLock;

/// The process-wide tracer used by service hot paths.
///
/// Starts disabled (events cost one atomic load); experiment binaries
/// enable it and attach sinks. Library tests should prefer their own
/// [`Tracer`] instances to avoid cross-test interference.
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(trace::DEFAULT_RING_CAPACITY))
}

/// The process-wide metrics registry used by service hot paths
/// (attic lock mediation, NoCDN chunk fetch/verify, DCol subflow
/// scheduling, Internet@home prefetch hits/misses).
///
/// Experiment binaries snapshot this registry into `BENCH_<exp>.json`;
/// unit tests asserting on counts should read deltas, since the
/// registry is shared across a test binary's threads.
pub fn metrics() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// The process-wide causal span tracer.
///
/// Starts disabled: every root/child/record call short-circuits to the
/// null context for ~a relaxed atomic load, so always-on call sites in
/// service crates (attic placement, DCol detours, co-op ladders) cost
/// nothing outside traced experiments. Experiment binaries enable it
/// (optionally sampled) and drain span trees for critical-path
/// attribution. Unit tests should prefer their own [`SpanTracer`]
/// instances to avoid cross-test interference.
pub fn spans() -> &'static SpanTracer {
    static GLOBAL: OnceLock<SpanTracer> = OnceLock::new();
    GLOBAL.get_or_init(|| SpanTracer::new(span::DEFAULT_SPAN_CAPACITY))
}

/// The process-wide windowed time-series registry.
///
/// Experiments record sim-time-keyed samples here (delivery burn rate,
/// fabric detect latency, accounting mismatch); the bench harness folds
/// every series into the snapshot's `series` section, and SLO monitors
/// evaluate over the same windows.
pub fn series_registry() -> &'static SeriesRegistry {
    static GLOBAL: OnceLock<SeriesRegistry> = OnceLock::new();
    GLOBAL.get_or_init(SeriesRegistry::new)
}

/// Records a structured trace event if the tracer is enabled.
///
/// Field values are **not evaluated** when the tracer is disabled, so
/// sites in hot loops cost one relaxed atomic load.
///
/// ```
/// let tracer = hpop_obs::Tracer::new(64);
/// tracer.enable();
/// hpop_obs::event!(tracer, 1_500_000, "nocdn", "chunk.verify", size = 4096u64, ok = true);
/// assert_eq!(tracer.recent().len(), 1);
/// ```
#[macro_export]
macro_rules! event {
    ($tracer:expr, $time_us:expr, $service:expr, $topic:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let __t = &$tracer;
        if __t.is_enabled() {
            __t.record($crate::trace::TraceEvent {
                sim_time_us: $time_us,
                service: ::std::string::String::from($service),
                topic: ::std::string::String::from($topic),
                fields: vec![$((
                    ::std::string::String::from(stringify!($key)),
                    $crate::json::Value::from($val),
                )),*],
            });
        }
    }};
}

/// Times the enclosing scope into a histogram (wall-clock nanoseconds),
/// for instrumenting hot paths like lock mediation or chunk verify.
///
/// ```
/// let reg = hpop_obs::MetricsRegistry::new();
/// let hist = reg.histogram("attic.lock.mediate_ns");
/// {
///     let _guard = hpop_obs::span!(hist);
///     // ... the work being timed ...
/// }
/// assert_eq!(reg.histogram("attic.lock.mediate_ns").count(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($hist:expr) => {
        $crate::SpanGuard::new(&$hist)
    };
}
