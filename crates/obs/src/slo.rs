//! Declarative SLO monitors evaluated continuously over windowed
//! series.
//!
//! An experiment declares what must hold ("delivery success stays above
//! 99% in every 30-second window", "accounting payable mismatch is
//! zero", "fabric detection latency never exceeds its ceiling") and
//! feeds the underlying [`SeriesRegistry`] as the run progresses. The
//! [`SloMonitor`] evaluates every *closed* window as sim time advances
//! — not once at the end — so a breach that recovers before the final
//! snapshot still leaves a [`SloBreach`] record naming the exact
//! window. Breaches land in the snapshot's `slo_breaches` section and
//! in the `slo.breach.windows` counter that `check_snapshot` budgets in
//! CI.

use crate::series::SeriesRegistry;
use std::collections::BTreeMap;

/// What one SLO requires of each window.
#[derive(Clone, Debug, PartialEq)]
pub enum SloKind {
    /// Burn-rate floor: in every window with `total` samples,
    /// `sum(good) * 10_000 >= floor_bp * sum(total)`.
    RatioFloorBp {
        /// Series of successful events.
        good: String,
        /// Series of all events.
        total: String,
        /// Minimum good/total ratio, basis points.
        floor_bp: u64,
    },
    /// Ceiling on the windowed maximum of a value series (e.g. a
    /// detection latency): breaches when `max > ceiling` in a window
    /// with samples.
    MaxCeiling {
        /// The value series.
        series: String,
        /// Largest acceptable sample.
        ceiling: u64,
    },
    /// The windowed sum must be exactly zero (e.g. accounting payable
    /// mismatches); every closed window is evaluated, empty ones pass.
    ZeroSum {
        /// The violation-count series.
        series: String,
    },
}

/// One named service-level objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Name surfaced in breach records and CI output.
    pub name: String,
    /// The windowed condition.
    pub kind: SloKind,
}

/// One window that violated an SLO.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloBreach {
    /// The violated SLO's name.
    pub slo: String,
    /// Window start, sim-time microseconds.
    pub window_start_us: u64,
    /// Window end (exclusive), sim-time microseconds.
    pub window_end_us: u64,
    /// The observed value (ratio in bp, max, or sum — per the kind).
    pub value: u64,
    /// The bound it violated (floor or ceiling).
    pub bound: u64,
}

/// Continuous evaluator for a set of [`SloSpec`]s over one
/// [`SeriesRegistry`].
#[derive(Clone, Debug)]
pub struct SloMonitor {
    registry: SeriesRegistry,
    specs: Vec<SloSpec>,
    /// Per-SLO high-water mark: windows starting before this are done.
    evaluated_until: BTreeMap<String, u64>,
    breaches: Vec<SloBreach>,
    windows_evaluated: u64,
}

impl SloMonitor {
    /// A monitor with no objectives yet.
    pub fn new(registry: SeriesRegistry) -> SloMonitor {
        SloMonitor {
            registry,
            specs: Vec::new(),
            evaluated_until: BTreeMap::new(),
            breaches: Vec::new(),
            windows_evaluated: 0,
        }
    }

    /// Adds an objective.
    pub fn add(&mut self, spec: SloSpec) {
        self.specs.push(spec);
    }

    /// The declared objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Evaluates every window that is fully closed at sim time
    /// `now_us` and not yet evaluated. Call this from the experiment's
    /// main loop; it is idempotent per window.
    pub fn poll(&mut self, now_us: u64) {
        let specs = self.specs.clone();
        for spec in &specs {
            self.poll_spec(spec, now_us);
        }
    }

    /// Evaluates everything up to and including the window containing
    /// `end_us` (the end-of-run flush: the final, partially-filled
    /// window is judged too).
    pub fn finish(&mut self, end_us: u64) {
        self.poll(end_us.saturating_add(u64::MAX / 2));
    }

    fn poll_spec(&mut self, spec: &SloSpec, now_us: u64) {
        let driver = match &spec.kind {
            SloKind::RatioFloorBp { total, .. } => total,
            SloKind::MaxCeiling { series, .. } | SloKind::ZeroSum { series } => series,
        };
        let Some(handle) = self.registry.get(driver) else {
            return;
        };
        let window_us = handle.window_us();
        let from = self.evaluated_until.get(&spec.name).copied().unwrap_or(0);
        let mut evaluated_to = from;
        for w in handle.windows() {
            let end = w.start_us + window_us;
            if w.start_us < from || end > now_us {
                continue;
            }
            self.windows_evaluated += 1;
            evaluated_to = evaluated_to.max(end);
            let breach = match &spec.kind {
                SloKind::RatioFloorBp { good, floor_bp, .. } => {
                    if w.count == 0 {
                        None
                    } else {
                        let good_sum = self
                            .registry
                            .get(good)
                            .and_then(|g| g.window_at(w.start_us))
                            .map(|g| g.sum)
                            .unwrap_or(0);
                        let bp = good_sum * 10_000 / w.sum.max(1);
                        (good_sum * 10_000 < floor_bp * w.sum).then_some((bp, *floor_bp))
                    }
                }
                SloKind::MaxCeiling { ceiling, .. } => {
                    (w.count > 0 && w.max > *ceiling).then_some((w.max, *ceiling))
                }
                SloKind::ZeroSum { .. } => (w.sum != 0).then_some((w.sum, 0)),
            };
            if let Some((value, bound)) = breach {
                self.breaches.push(SloBreach {
                    slo: spec.name.clone(),
                    window_start_us: w.start_us,
                    window_end_us: end,
                    value,
                    bound,
                });
            }
        }
        self.evaluated_until.insert(spec.name.clone(), evaluated_to);
    }

    /// Every breach recorded so far, in evaluation order.
    pub fn breaches(&self) -> &[SloBreach] {
        &self.breaches
    }

    /// Windows evaluated across all objectives.
    pub fn windows_evaluated(&self) -> u64 {
        self.windows_evaluated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000;

    fn monitor_with(specs: Vec<SloSpec>) -> (SeriesRegistry, SloMonitor) {
        let reg = SeriesRegistry::new();
        let mut mon = SloMonitor::new(reg.clone());
        for s in specs {
            mon.add(s);
        }
        (reg, mon)
    }

    #[test]
    fn ratio_floor_flags_only_bad_windows() {
        let (reg, mut mon) = monitor_with(vec![SloSpec {
            name: "delivery".into(),
            kind: SloKind::RatioFloorBp {
                good: "ok".into(),
                total: "all".into(),
                floor_bp: 9_000,
            },
        }]);
        let ok = reg.series("ok", SEC);
        let all = reg.series("all", SEC);
        // Window 0: 10/10 good. Window 1: 5/10 good (breach). Window 2
        // recovers.
        for i in 0..10 {
            all.incr(i);
            ok.incr(i);
        }
        for i in 0..10 {
            all.incr(SEC + i);
            if i < 5 {
                ok.incr(SEC + i);
            }
        }
        for i in 0..10 {
            all.incr(2 * SEC + i);
            ok.incr(2 * SEC + i);
        }
        mon.poll(3 * SEC);
        let b = mon.breaches();
        assert_eq!(b.len(), 1, "{b:?}");
        assert_eq!(b[0].window_start_us, SEC);
        assert_eq!(b[0].value, 5_000);
        assert_eq!(b[0].bound, 9_000);
    }

    #[test]
    fn poll_is_incremental_and_idempotent() {
        let (reg, mut mon) = monitor_with(vec![SloSpec {
            name: "zero".into(),
            kind: SloKind::ZeroSum {
                series: "mismatch".into(),
            },
        }]);
        let s = reg.series("mismatch", SEC);
        s.record(100, 1);
        mon.poll(2 * SEC);
        mon.poll(2 * SEC);
        mon.poll(5 * SEC);
        assert_eq!(mon.breaches().len(), 1);
    }

    #[test]
    fn open_window_waits_for_closure() {
        let (reg, mut mon) = monitor_with(vec![SloSpec {
            name: "zero".into(),
            kind: SloKind::ZeroSum {
                series: "mismatch".into(),
            },
        }]);
        let s = reg.series("mismatch", SEC);
        s.record(500_000, 3);
        mon.poll(900_000); // window [0, 1s) not closed yet
        assert!(mon.breaches().is_empty());
        mon.finish(900_000);
        assert_eq!(mon.breaches().len(), 1);
        assert_eq!(mon.breaches()[0].value, 3);
    }

    #[test]
    fn max_ceiling_flags_spikes() {
        let (reg, mut mon) = monitor_with(vec![SloSpec {
            name: "detect".into(),
            kind: SloKind::MaxCeiling {
                series: "latency".into(),
                ceiling: 100,
            },
        }]);
        let s = reg.series("latency", SEC);
        s.record(10, 50);
        s.record(SEC + 10, 170);
        s.record(2 * SEC + 10, 99);
        mon.finish(3 * SEC);
        let b = mon.breaches();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].value, 170);
        assert_eq!(b[0].window_start_us, SEC);
    }

    #[test]
    fn missing_series_is_not_a_breach() {
        let (_reg, mut mon) = monitor_with(vec![SloSpec {
            name: "ghost".into(),
            kind: SloKind::ZeroSum {
                series: "never.created".into(),
            },
        }]);
        mon.poll(10 * SEC);
        assert!(mon.breaches().is_empty());
        assert_eq!(mon.windows_evaluated(), 0);
    }
}
