//! Value-type measurement helpers: [`Counter`] and [`Cdf`].
//!
//! These originated in `hpop-netsim::metrics` and moved here so every
//! crate (not just the simulator) shares one vocabulary; `hpop-netsim`
//! re-exports them for compatibility. The paper's CCZ study reports
//! per-second rate percentiles — [`Cdf`] reproduces that style of
//! result directly.

use std::fmt;

/// A monotonically increasing event/byte counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An empirical distribution supporting quantiles and exceedance
/// fractions — `fraction_above(x)` answers the paper's "CCZ users exceed
/// 10 Mbps only 0.1% of the time" style of question directly.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
    dirty: bool,
}

impl Cdf {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a distribution from an iterator of samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut c = Cdf::new();
        for s in samples {
            c.push(s);
        }
        c
    }

    /// Adds a sample. Non-finite samples are ignored.
    pub fn push(&mut self, v: f64) {
        if v.is_finite() {
            self.sorted.push(v);
            self.dirty = true;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.dirty = false;
        }
    }

    /// The `q`-quantile (q in `[0,1]`), by nearest-rank; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// The median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples strictly greater than `x`; zero when empty.
    pub fn fraction_above(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return 0.0;
        }
        let first_above = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - first_above) as f64 / self.sorted.len() as f64
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.to_string(), "42");
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn cdf_quantiles() {
        let mut c = Cdf::from_samples((1..=100).map(f64::from));
        assert_eq!(c.quantile(0.5), Some(50.0));
        assert_eq!(c.quantile(0.99), Some(99.0));
        assert_eq!(c.quantile(1.0), Some(100.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert!((c.fraction_above(90.0) - 0.1).abs() < 1e-12);
        assert_eq!(c.mean(), 50.5);
    }

    #[test]
    fn cdf_ignores_non_finite() {
        let mut c = Cdf::new();
        c.push(f64::NAN);
        c.push(f64::INFINITY);
        c.push(1.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.median(), Some(1.0));
    }

    #[test]
    fn empty_cdf() {
        let mut c = Cdf::new();
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.fraction_above(0.0), 0.0);
        assert_eq!(c.mean(), 0.0);
    }
}
