//! Property-based tests of the causal-tracing guarantees.
//!
//! 1. **Well-formedness by construction**: any span tree recorded
//!    honestly through the [`SpanTracer`] API (children carved out of
//!    their parent's sim-time interval) validates with zero malformed
//!    traces — no orphans, every child nested.
//! 2. **Attribution partitions**: the deepest-wins sweep's per-stage
//!    totals sum to the root duration *exactly*, for every generated
//!    tree shape — the ≥95% accounted budget in CI holds by
//!    construction, not by luck.
//! 3. **Adversarial soup**: arbitrary flat span dumps (duplicate ids,
//!    orphans, cycles, inverted nesting) never panic or hang
//!    [`build_traces`]; whatever trees survive validation still
//!    partition exactly, and rejected traces are counted.
//! 4. **Sampling determinism**: two tracers with the same 1-in-N rate
//!    make identical keep/drop decisions, and children inherit their
//!    parent's decision.

use crate::critical_path::build_traces;
use crate::span::{SpanRecord, SpanTracer, TraceCtx};
use proptest::prelude::*;

/// Stage vocabulary used across the services.
const STAGES: [&str; 6] = [
    "request",
    "transfer",
    "retry",
    "hedge",
    "verify",
    "origin_fallback",
];

/// Plan for one honestly-recorded tree: each child picks an
/// already-recorded span as parent and carves a sub-interval out of it
/// via (start, length) percentages.
fn arb_tree_plan() -> impl Strategy<Value = (u64, Vec<(u8, u8, u8, u8)>)> {
    (
        1u64..=5_000_000, // root duration, us
        proptest::collection::vec(
            (any::<u8>(), 0u8..=100, 0u8..=100, any::<u8>()),
            0..24, // (parent pick, start %, length %, stage pick)
        ),
    )
}

/// Records the planned tree through the tracer and returns the drained
/// span dump.
fn record_plan(root_len: u64, children: &[(u8, u8, u8, u8)]) -> Vec<SpanRecord> {
    let tracer = SpanTracer::new(256);
    tracer.enable();
    let root = tracer.root();
    // (ctx, start_us, end_us) of every span recorded so far.
    let mut intervals: Vec<(TraceCtx, u64, u64)> = vec![(root, 0, root_len)];
    for &(pick, start_pct, len_pct, stage_pick) in children {
        let (pctx, ps, pe) = intervals[pick as usize % intervals.len()];
        let start = ps + (pe - ps) * u64::from(start_pct) / 100;
        let end = start + (pe - start) * u64::from(len_pct) / 100;
        let stage = STAGES[stage_pick as usize % STAGES.len()];
        let ctx = tracer.record_child(&pctx, "prop", stage, start, end);
        intervals.push((ctx, start, end));
    }
    tracer.record(&root, "prop", "request", 0, root_len);
    tracer.take()
}

proptest! {
    /// Honestly-recorded trees always validate (no orphans, children
    /// nested in their parent's interval) and the attribution sweep
    /// partitions the root duration exactly.
    #[test]
    fn recorded_trees_are_well_formed_and_attribution_partitions(
        (root_len, children) in arb_tree_plan(),
    ) {
        let records = record_plan(root_len, &children);
        prop_assert_eq!(records.len(), children.len() + 1);
        let (trees, malformed) = build_traces(&records);
        prop_assert_eq!(malformed, 0, "honest recording produced a malformed trace");
        prop_assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        prop_assert_eq!(tree.duration_us(), root_len);
        // Every child is nested inside its parent's interval.
        for s in &tree.spans {
            if s.parent_span_id != 0 {
                let parent = tree
                    .spans
                    .iter()
                    .find(|p| p.span_id == s.parent_span_id)
                    .expect("no orphans in a validated tree");
                prop_assert!(s.start_us >= parent.start_us && s.end_us <= parent.end_us);
            }
        }
        let attrib = tree.attribution();
        let total: u64 = attrib.values().sum();
        prop_assert_eq!(total, tree.duration_us(), "attribution must partition the root");
        for stage in attrib.keys() {
            prop_assert!(STAGES.contains(&stage.as_str()));
        }
    }

    /// Arbitrary span soup — duplicate ids, orphan parents, self and
    /// mutual cycles, inverted intervals — never panics or hangs, and
    /// the trees that survive validation still partition exactly.
    #[test]
    fn adversarial_soup_never_breaks_the_analyzer(
        soup in proptest::collection::vec(
            (1u64..=4, 1u64..=48, 0u64..=48, 0u64..=1_000, 0u64..=1_000, any::<u8>()),
            0..40,
        ),
    ) {
        let records: Vec<SpanRecord> = soup
            .into_iter()
            .map(|(trace, id, parent, a, b, stage_pick)| SpanRecord {
                trace_id: trace,
                span_id: id,
                parent_span_id: parent,
                service: "prop".into(),
                stage: STAGES[stage_pick as usize % STAGES.len()].into(),
                start_us: a.min(b),
                end_us: a.max(b),
            })
            .collect();
        let distinct_traces = {
            let mut ids: Vec<u64> = records.iter().map(|r| r.trace_id).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        let (trees, malformed) = build_traces(&records);
        prop_assert_eq!(trees.len() + malformed, distinct_traces);
        for tree in &trees {
            let total: u64 = tree.attribution().values().sum();
            prop_assert_eq!(total, tree.duration_us());
        }
    }

    /// 1-in-N sampling is a pure function of the allocated trace id:
    /// two tracers at the same rate agree on every keep/drop decision,
    /// and a child context inherits its parent's decision.
    #[test]
    fn sampling_is_deterministic_and_inherited(
        one_in in 1u64..=16,
        draws in 1usize..=64,
    ) {
        let a = SpanTracer::new(16);
        let b = SpanTracer::new(16);
        for t in [&a, &b] {
            t.enable();
            t.set_sampling(one_in);
        }
        let mut kept = 0usize;
        for _ in 0..draws {
            // Mirror every id allocation on both tracers — child() also
            // draws from the counter, so the call sequences must match.
            let ra = a.root();
            let rb = b.root();
            prop_assert_eq!(ra.is_sampled(), rb.is_sampled());
            let child = a.child(&ra);
            let _ = b.child(&rb);
            prop_assert_eq!(child.is_sampled(), ra.is_sampled());
            if ra.is_sampled() {
                kept += 1;
                prop_assert_eq!(child.parent_span_id, ra.span_id);
                prop_assert_eq!(child.trace_id, ra.trace_id);
            }
        }
        if one_in == 1 {
            prop_assert_eq!(kept, draws, "1-in-1 sampling must keep everything");
        }
    }
}
