//! Pluggable trace sinks: [`MemorySink`] for tests, [`JsonlSink`] for
//! experiment runs.

use crate::trace::TraceEvent;
use parking_lot::Mutex;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Receives every event recorded by a [`crate::Tracer`] it is attached
/// to. Sinks run inline on the recording thread; keep `record` cheap or
/// buffer internally.
pub trait TraceSink: Send {
    /// Handles one event.
    fn record(&mut self, event: &TraceEvent);

    /// Persists anything buffered. Called on [`crate::Tracer::flush`]
    /// and before sink teardown.
    fn flush(&mut self) {}
}

/// Collects events into a shared `Vec` for test assertions.
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink {
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle to the collected events; stays valid after the sink is
    /// boxed and handed to a tracer.
    pub fn events(&self) -> Arc<Mutex<Vec<TraceEvent>>> {
        Arc::clone(&self.events)
    }
}

impl Default for MemorySink {
    fn default() -> Self {
        MemorySink::new()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Writes one JSON object per line ([`TraceEvent::to_json`]) to a file.
pub struct JsonlSink {
    out: BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: BufWriter::new(file),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        // A failed write is not worth panicking a simulation over; the
        // error resurfaces on flush for callers that check.
        let _ = writeln!(self.out, "{}", event.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn event(t: u64) -> TraceEvent {
        TraceEvent {
            sim_time_us: t,
            service: "svc".into(),
            topic: "test.topic".into(),
            fields: vec![("n".into(), json::Value::from(t))],
        }
    }

    #[test]
    fn memory_sink_accumulates() {
        let mut sink = MemorySink::new();
        let events = sink.events();
        sink.record(&event(1));
        sink.record(&event(2));
        assert_eq!(events.lock().len(), 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("hpop_obs_sink_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("trace.jsonl");
        {
            let mut sink = JsonlSink::create(&path).expect("create");
            sink.record(&event(10));
            sink.record(&event(20));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).expect("each line is valid JSON");
            assert_eq!(
                v.get("t_us").and_then(json::Value::as_u64),
                Some((i as u64 + 1) * 10)
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
