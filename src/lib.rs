//! # hpop — Home Point of Presence
//!
//! A reproduction of *"Rethinking Home Networks in the Ultrabroadband Era"*
//! (Rabinovich, Allman, Brennan, Pollack, Xu — ICDCS 2019).
//!
//! The paper envisions a **home point of presence (HPoP)**: an always-on
//! appliance inside an ultrabroadband (FTTH) home network that becomes the
//! hub of a household's digital life. This workspace implements the HPoP
//! platform, the four services the paper describes, and every substrate
//! those services need:
//!
//! - [`attic`] — the **Data Attic** (§IV-A): a home-resident,
//!   application-agnostic data store with WebDAV semantics that external
//!   applications operate on instead of retaining user data.
//! - [`nocdn`] — **NoCDN** (§IV-B): CDN-less scalable content delivery
//!   using recruited HPoPs as edge servers, with cryptographic content
//!   integrity and signed usage accounting.
//! - [`dcol`] — the **Detour Collective** (§IV-C): transparent overlay
//!   detour routing via MPTCP subflows through cooperative waypoints.
//! - [`internet_home`] — **Internet@home** (§IV-D): history-driven
//!   aggressive prefetching, demand smoothing, and cooperative
//!   neighborhood caching.
//!
//! Substrates: [`netsim`] (deterministic flow-level network simulator),
//! [`transport`] (TCP/MPTCP models), [`http`] (HTTP/WebDAV messages and
//! caching), [`nat`] (NAT traversal), [`crypto`] (SHA-256/HMAC/ChaCha20),
//! [`erasure`] (Reed–Solomon coding), [`core`] (the appliance platform)
//! and [`workloads`] (workload generators).
//!
//! ## Quickstart
//!
//! ```
//! use hpop::core::{Appliance, HouseholdConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut hpop = Appliance::new(HouseholdConfig::named("doe-family"));
//! hpop.power_on();
//! assert!(hpop.is_online());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios reproducing the paper's three
//! figures, and `crates/bench` for the experiment harness regenerating
//! every quantitative claim (indexed in `DESIGN.md` / `EXPERIMENTS.md`).

pub use hpop_attic as attic;
pub use hpop_core as core;
pub use hpop_crypto as crypto;
pub use hpop_dcol as dcol;
pub use hpop_erasure as erasure;
pub use hpop_fabric as fabric;
pub use hpop_http as http;
pub use hpop_internet_home as internet_home;
pub use hpop_nat as nat;
pub use hpop_netsim as netsim;
pub use hpop_nocdn as nocdn;
pub use hpop_transport as transport;
pub use hpop_workloads as workloads;
