//! Internet@home in a gigabit neighborhood (§IV-D): history-driven
//! prefetching, demand smoothing, and the cooperative cache that saves
//! the shared aggregation uplink.
//!
//! ```sh
//! cargo run --example neighborhood_cache
//! ```

use hpop::http::url::Url;
use hpop::internet_home::coop::CoopCache;
use hpop::internet_home::history::HistoryProfile;
use hpop::internet_home::prefetch::{ObjectMeta, PrefetchConfig, PrefetchPlanner};
use hpop::internet_home::smoothing::{DemandSmoother, HourlyLoad, RefreshTask};
use hpop::netsim::time::{SimDuration, SimTime};
use hpop::workloads::diurnal::DiurnalCurve;
use hpop::workloads::zipf::WebUniverse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let universe = WebUniverse::generate(1500, 1.0, 90_000, &mut rng);
    let curve = DiurnalCurve::residential();

    // 1. A household's month of browsing trains the profile.
    let mut profile = HistoryProfile::new();
    let mut planner = PrefetchPlanner::new();
    for o in universe.objects() {
        planner.register(
            Url::https("web.example", &o.path),
            ObjectMeta {
                bytes: o.bytes,
                ttl: SimDuration::from_secs(o.ttl_secs),
            },
        );
    }
    for day in 0..30u64 {
        for _ in 0..250 {
            let o = universe.sample(&mut rng);
            profile.record_visit(
                &Url::https("web.example", &o.path),
                curve.sample_time(day, &mut rng),
            );
        }
    }
    println!(
        "history: {} visits over {} distinct URLs; top-50 covers {:.1}% of visits",
        profile.total_visits(),
        profile.distinct_sites(),
        profile.coverage_of_top(50) * 100.0
    );

    // 2. Plan "this residence's copy of the Internet".
    let plan = planner.plan(
        &profile,
        PrefetchConfig {
            scope: 200,
            freshness_factor: 1.0,
        },
    );
    println!(
        "prefetch plan: {} objects, {:.1} MB stored, {:.1} req/h upstream, predicted hit rate {:.1}%",
        plan.entries.len(),
        plan.storage_bytes as f64 / 1e6,
        plan.upstream_requests_per_hour,
        plan.expected_hit_rate * 100.0
    );

    // 3. Smooth the refresh traffic into quiet hours.
    let mut demand = HourlyLoad::default();
    for h in 0..24 {
        demand.bytes[h] = curve.weight(h) * 15e6;
    }
    let tasks: Vec<RefreshTask> = plan
        .entries
        .iter()
        .enumerate()
        .map(|(i, (_, period))| {
            let deadline = curve.sample_time(1, &mut rng);
            RefreshTask {
                bytes: 100_000 + (i as u64 % 7) * 30_000,
                deadline,
                earliest: SimTime::from_nanos(
                    deadline.as_nanos().saturating_sub(period.as_nanos()),
                ),
            }
        })
        .collect();
    let naive = DemandSmoother::at_deadline(&tasks, &demand);
    let smart = DemandSmoother::smoothed(&tasks, &demand);
    println!(
        "demand smoothing: peak {:.1} -> {:.1} MB/h (peak/mean {:.2} -> {:.2})",
        naive.peak() / 1e6,
        smart.peak() / 1e6,
        naive.peak_to_mean(),
        smart.peak_to_mean()
    );

    // 4. Ten neighboring HPoPs cooperate instead of each fetching alone.
    let mut coop = CoopCache::new(10);
    let mut indep = CoopCache::new(10).independent();
    for _ in 0..150 {
        for home in 0..10 {
            let o = universe.sample(&mut rng);
            let url = Url::https("web.example", &o.path);
            coop.request(home, &url, o.bytes);
            indep.request(home, &url, o.bytes);
        }
    }
    println!(
        "cooperative cache: uplink {:.1} MB vs {:.1} MB independent ({:.1}% saved), {:.1}% of requests stayed in the neighborhood",
        coop.stats().uplink_bytes as f64 / 1e6,
        indep.stats().uplink_bytes as f64 / 1e6,
        (1.0 - coop.stats().uplink_bytes as f64 / indep.stats().uplink_bytes as f64) * 100.0,
        coop.stats().containment() * 100.0
    );
}
