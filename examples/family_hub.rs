//! The household hub in daily use (§III): contacts and calendar served
//! by the attic, a phone going offline and reconciling on return, and
//! the whole personal tree backed up — encrypted — to friends' HPoPs.
//!
//! ```sh
//! cargo run --example family_hub
//! ```

use hpop::attic::backup::{BackupPlan, BackupSet};
use hpop::attic::personal::{Calendar, CalendarEvent, Contact, ContactsBook};
use hpop::attic::server::AtticServer;
use hpop::attic::sync::OfflineReplica;
use hpop::core::{Appliance, HouseholdConfig};
use hpop::crypto::sha256::Sha256;
use hpop::netsim::time::{SimDuration, SimTime};

fn main() {
    let mut hpop = Appliance::new(HouseholdConfig::named("doe-family"));
    hpop.power_on();
    let mut attic = AtticServer::new(hpop.tokens().clone());
    let store = attic.store_mut();

    // 1. The mundane services (§III): contacts and calendar are plain
    //    attic files — versioned, lockable, grantable, backupable.
    ContactsBook::init(store).expect("init contacts");
    Calendar::init(store).expect("init calendar");
    for (id, name, email) in [
        ("grandma", "Grandma Doe", "grandma@mail.example"),
        ("dentist", "Dr. Molar", "frontdesk@molar.example"),
        ("school", "Riverside School", "office@riverside.example"),
    ] {
        ContactsBook::save(
            store,
            &Contact {
                id: id.into(),
                name: name.into(),
                email: email.into(),
                phone: "555-0100".into(),
            },
            SimTime::from_secs(1),
        )
        .expect("save contact");
    }
    Calendar::save(
        store,
        &CalendarEvent {
            id: "recital".into(),
            title: "Piano recital".into(),
            start: SimTime::from_secs(86_400 * 3),
            duration: SimDuration::from_secs(5_400),
        },
        SimTime::from_secs(2),
    )
    .expect("save event");
    println!(
        "contacts: {:?}",
        ContactsBook::list(store)
            .iter()
            .map(|c| &c.name)
            .collect::<Vec<_>>()
    );
    println!(
        "this week: {:?}",
        Calendar::upcoming(store, SimTime::ZERO, SimDuration::from_secs(7 * 86_400))
            .iter()
            .map(|e| &e.title)
            .collect::<Vec<_>>()
    );

    // 2. Alice's phone snapshots the tree, goes offline on a flight,
    //    edits a contact — and Bob edits a different one at home.
    let mut phone = OfflineReplica::snapshot(store, "/personal");
    phone.edit(
        "/personal/contacts/grandma.vcf",
        "BEGIN:VCARD\nVERSION:3.0\nFN:Grandma Doe\nEMAIL:grandma@newmail.example\nTEL:555-0177\nEND:VCARD\n",
    );
    // Meanwhile at home, Bob updates the dentist's number.
    let mut bob_edit = ContactsBook::load(store, "dentist").expect("exists");
    bob_edit.phone = "555-0123".into();
    ContactsBook::save(store, &bob_edit, SimTime::from_secs(100)).expect("save");

    // Reconnection: disjoint edits merge cleanly.
    let outcome = phone
        .reconcile(store, SimTime::from_secs(200))
        .expect("reconcile");
    println!(
        "phone reconciled: {} applied, {} conflicts",
        outcome.applied.len(),
        outcome.conflicts.len()
    );
    assert!(outcome.conflicts.is_empty());
    assert_eq!(
        ContactsBook::load(store, "grandma").expect("exists").email,
        "grandma@newmail.example"
    );
    assert_eq!(
        ContactsBook::load(store, "dentist").expect("exists").phone,
        "555-0123"
    );

    // 3. Nightly backup: the personal tree, encrypted, erasure-coded
    //    across five friends' HPoPs (any 3 reconstruct).
    let blob: Vec<u8> = store
        .files_under("/personal")
        .iter()
        .flat_map(|p| {
            let v = store.get(p).expect("listed");
            let mut rec = p.clone().into_bytes();
            rec.push(0);
            rec.extend_from_slice(&v.body);
            rec.push(b'\n');
            rec
        })
        .collect();
    let key = *Sha256::digest(b"household-backup-key").as_bytes();
    let mut backup = BackupSet::create(
        &blob,
        &key,
        "personal-nightly",
        BackupPlan::Erasure { data: 3, parity: 2 },
    )
    .expect("backup");
    println!(
        "backup: {} bytes across {} friends ({:.2}x overhead, {:.4} availability at 10% peer failure)",
        backup.stored_bytes(),
        backup.shards.len(),
        backup.plan().overhead(),
        backup.plan().availability(0.10),
    );

    // Two friends' HPoPs are offline during the restore drill — fine.
    backup.lose_peer(1);
    backup.lose_peer(4);
    let restored = backup.restore(&key, "personal-nightly").expect("restore");
    assert_eq!(restored, blob);
    println!(
        "restore drill with 2 friends offline: OK ({} bytes)",
        restored.len()
    );
}
