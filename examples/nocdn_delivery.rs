//! The paper's Fig. 2 workflow end-to-end: a page delivered by NoCDN.
//!
//! The origin serves only a signed wrapper page; recruited HPoPs serve
//! the objects; the loader verifies every hash (one peer is malicious
//! and gets caught), assembles the page, and hands signed usage records
//! to the peers, which upload them for payment — where the inflating
//! peer's forgery is rejected.
//!
//! ```sh
//! cargo run --example nocdn_delivery
//! ```

use hpop::nocdn::accounting::Accounting;
use hpop::nocdn::loader::PageLoader;
use hpop::nocdn::origin::{ContentProvider, PageSpec};
use hpop::nocdn::peer::{NoCdnPeer, PeerBehavior, PeerId};
use hpop::nocdn::select::{PeerDirectory, PeerInfo, SelectionPolicy};
use hpop::nocdn::wrapper::WrapperPage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const MASTER: [u8; 32] = [42u8; 32];

fn main() {
    // The content provider publishes a page.
    let mut origin = ContentProvider::new("daily-planet.example");
    origin.put_object("/index.html", vec![b'<'; 40_000]);
    origin.put_object("/style.css", vec![b'c'; 80_000]);
    origin.put_object("/app.js", vec![b'j'; 150_000]);
    origin.put_object("/front-page.jpg", vec![b'i'; 900_000]);
    origin.put_page(PageSpec {
        container: "/index.html".into(),
        embedded: vec![
            "/style.css".into(),
            "/app.js".into(),
            "/front-page.jpg".into(),
        ],
    });
    let objects: Vec<String> = origin
        .page("/index.html")
        .expect("published")
        .objects()
        .map(str::to_owned)
        .collect();

    // Recruited household HPoPs — peer 2 signed up to corrupt content,
    // peer 3 will inflate its usage reports.
    let behaviors = [
        PeerBehavior::Honest,
        PeerBehavior::Honest,
        PeerBehavior::CorruptsContent,
        PeerBehavior::InflatesUsage(10),
    ];
    let mut peers: BTreeMap<PeerId, NoCdnPeer> = behaviors
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            (
                PeerId(i as u32),
                NoCdnPeer::with_behavior(PeerId(i as u32), b),
            )
        })
        .collect();
    let mut directory = PeerDirectory::new();
    for i in 0..4 {
        directory.recruit(
            PeerId(i),
            PeerInfo {
                rtt_ms: 8.0 + i as f64,
                violations: 0,
            },
        );
    }

    let mut accounting = Accounting::new();
    let mut rng = StdRng::seed_from_u64(2026);

    // Fifty users read the front page.
    let mut corrupted_total = 0usize;
    for client in 0..50u64 {
        let assignments = directory.assign(&objects, SelectionPolicy::Random, &mut rng);
        let wrapper = WrapperPage::generate(
            &mut origin,
            "/index.html",
            client,
            &assignments,
            &mut accounting,
            &MASTER,
            client == 0,
        );
        let mut loader = PageLoader::new(client);
        let (report, page) = loader.load(&wrapper, &mut peers, &mut origin);
        corrupted_total += report.corrupted.len();
        assert_eq!(
            page.len() as u64,
            origin.page_bytes("/index.html").expect("page")
        );
        if client == 0 {
            println!(
                "first page view: wrapper {} bytes vs page {} bytes; {} objects from peers",
                wrapper.wire_size(),
                page.len(),
                wrapper.object_map.len()
            );
        }
    }

    // Peers upload usage records; the provider settles them.
    for (_, peer) in peers.iter_mut() {
        for record in peer.upload_records() {
            let _ = accounting.settle(&record);
        }
    }

    println!("\nafter 50 page views:");
    println!(
        "  origin traffic: {} bytes of wrappers + {} bytes of objects (cache fills + integrity fallbacks)",
        origin.wrapper_bytes, origin.origin_bytes
    );
    println!(
        "  baseline without NoCDN would have been {} bytes",
        origin.page_bytes("/index.html").expect("page") * 50
    );
    println!("  corrupted objects detected (and repaired from origin): {corrupted_total}");
    println!("\npayments:");
    for i in 0..4u32 {
        let p = PeerId(i);
        println!(
            "  peer {i} ({behavior:?}): paid for {} bytes, {} records rejected",
            accounting.payable_bytes(p),
            accounting.rejection_count(p),
            behavior = behaviors[i as usize],
        );
    }
}
