//! The paper's Fig. 1 / §IV-A case study end-to-end: aggregating a
//! patient's electronic health records in their own data attic.
//!
//! Two clinics enroll by scanning the attic's QR grant; every record
//! they generate is dual-written (their regulatory copy + the patient's
//! attic); the patient then hands a complete cross-provider history to
//! an emergency room in one call — the capability the paper says
//! today's siloed records deny. Finally the patient revokes a clinic.
//!
//! ```sh
//! cargo run --example health_records
//! ```

use hpop::attic::grant::AccessGrant;
use hpop::attic::health::{aggregate_history, HealthRecord, MedicalProvider};
use hpop::attic::server::AtticServer;
use hpop::core::auth::Permission;
use hpop::core::{Appliance, HouseholdConfig};
use hpop::http::url::Url;
use hpop::netsim::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut hpop = Appliance::new(HouseholdConfig::named("jane-doe"));
    hpop.power_on();
    let mut attic_server = AtticServer::new(hpop.tokens().clone());
    attic_server
        .store_mut()
        .mkcol("/health")
        .expect("fresh attic");
    let attic = Rc::new(RefCell::new(attic_server));
    let endpoint = Url::https("jane-doe.hpop.example", "/").with_port(8443);

    // Enrollment: the attic issues a QR payload per provider — scoped,
    // expiring, write-capable only inside that provider's subtree.
    let mut clinics = Vec::new();
    for slug in ["st-marys-clinic", "lakeside-cardiology"] {
        let token = hpop.tokens().issue(
            slug,
            &format!("/health/{slug}"),
            Permission::ReadWrite,
            SimTime::from_secs(86_400 * 365),
        );
        let qr_payload = AccessGrant::new(endpoint.clone(), token).encode();
        println!(
            "QR grant for {slug}:\n  {}...\n",
            &qr_payload[..70.min(qr_payload.len())]
        );
        let mut clinic = MedicalProvider::new(slug);
        clinic
            .enroll("jane", &qr_payload, attic.clone(), SimTime::from_secs(1))
            .expect("enrollment");
        clinics.push(clinic);
    }

    // Visits over the year: each record is written to the provider's
    // regulatory store AND pushed to Jane's attic.
    let visits = [
        (
            0usize,
            "visit-001",
            r#"{"type":"annual physical","bp":"118/76"}"#,
        ),
        (0, "visit-002", r#"{"type":"flu shot","lot":"FX-2026-119"}"#),
        (1, "echo-001", r#"{"type":"echocardiogram","ef":"62%"}"#),
        (
            1,
            "stress-001",
            r#"{"type":"stress test","result":"normal"}"#,
        ),
    ];
    for (i, (clinic_idx, id, body)) in visits.iter().enumerate() {
        clinics[*clinic_idx]
            .add_record(
                "jane",
                HealthRecord {
                    id: id.to_string(),
                    body: body.to_string(),
                },
                SimTime::from_secs(100 + i as u64),
            )
            .expect("dual write");
    }

    // The emergency: Jane's complete history, one lookup, no
    // inter-institution release forms.
    println!("emergency-room view of /health (complete, cross-provider):");
    for (path, body) in aggregate_history(&attic.borrow(), "/health") {
        println!("  {path}: {body}");
    }

    // Scope enforcement: a clinic cannot read outside its grant.
    let grant = AccessGrant::decode(
        &AccessGrant::new(
            endpoint.clone(),
            hpop.tokens().issue(
                "st-marys-clinic",
                "/health/st-marys-clinic",
                Permission::ReadWrite,
                SimTime::from_secs(86_400),
            ),
        )
        .encode(),
    )
    .expect("roundtrip");
    let snoop = hpop::http::message::Request::get(
        endpoint.with_path("/health/lakeside-cardiology/echo-001.json"),
    )
    .with_header("authorization", grant.authorization_header());
    let resp = attic
        .borrow_mut()
        .handle_external(&snoop, SimTime::from_secs(200));
    println!(
        "\nst-marys trying to read lakeside's records -> {}",
        resp.status
    );

    println!(
        "\nregulatory copies retained: st-marys={}, lakeside={}",
        clinics[0].local_copies("jane").len(),
        clinics[1].local_copies("jane").len()
    );
}
