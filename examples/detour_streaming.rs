//! The paper's Fig. 3 data flow: a download accelerated by the Detour
//! Collective.
//!
//! A client's native route to a distant server is slow and lossy
//! (policy routing: a triangle-inequality violation). The collective's
//! explorer probes candidate waypoints, the session opens MPTCP
//! subflows through the best one (the server cannot tell it is an
//! overlay detour), and the review pass withdraws the underperforming
//! direct path mid-transfer.
//!
//! ```sh
//! cargo run --example detour_streaming
//! ```

use hpop::dcol::collective::DetourCollective;
use hpop::dcol::explorer::{rank_waypoints, select_beneficial};
use hpop::dcol::session::{DcolSession, SessionConfig};
use hpop::dcol::tunnel::TunnelType;
use hpop::netsim::netsim::NetSim;
use hpop::netsim::presets::{detour_triangle, DetourParams};
use hpop::netsim::time::SimDuration;
use hpop::netsim::units::MB;
use hpop::transport::mptcp::MptcpStats;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // A 500 MB download over a 200 Mbps / 80 ms / 2%-loss native route,
    // with a collective member's gigabit HPoP sitting off to the side.
    let net = detour_triangle(&DetourParams::default());
    let mut collective = DetourCollective::new();
    let _client_membership = collective.join(net.client);
    let waypoint_member = collective.join(net.waypoint);

    // Probe phase: is any detour predicted to beat the native path?
    let mut sim = NetSim::with_topology(net.topology.clone());
    let estimates = rank_waypoints(
        sim.state.net.routing(),
        net.client,
        net.server,
        &collective
            .waypoints_for(_client_membership)
            .iter()
            .map(|&(m, n)| (m, n))
            .collect::<Vec<_>>(),
        1460,
    );
    println!("probe results (best first):");
    for e in &estimates {
        println!(
            "  {:<12} rtt {:>9} loss {:>5.2}% predicted {:>12}",
            e.waypoint
                .map(|m| format!("member {}", m.0))
                .unwrap_or_else(|| "native path".into()),
            format!("{}", e.rtt),
            e.loss * 100.0,
            format!("{}", e.predicted_rate),
        );
    }
    let chosen = select_beneficial(&estimates, 1, 1.1);
    println!("chosen detours: {chosen:?} (member {})", waypoint_member.0);

    // Baseline: the same download without the collective.
    let direct = run(&net, &[], "direct only");
    // With the detour, NAT tunneling, and a 2 s review that withdraws
    // subflows carrying under 10% of the best subflow's bytes.
    let wps: Vec<_> = chosen
        .iter()
        .filter_map(|m| collective.node_of(*m).map(|n| (*m, n)))
        .collect();
    let detoured = run(&net, &wps, "with detour");

    println!(
        "\nspeedup from one cooperative waypoint: {:.2}x",
        direct.duration().as_secs_f64() / detoured.duration().as_secs_f64()
    );
    for sf in &detoured.subflows {
        println!(
            "  subflow {:<10} carried {:>10} bytes (wire {:>10})",
            sf.label, sf.bytes, sf.wire_bytes
        );
    }
}

fn run(
    net: &hpop::netsim::presets::DetourTriangle,
    wps: &[(
        hpop::dcol::collective::MemberId,
        hpop::netsim::topology::NodeId,
    )],
    label: &str,
) -> MptcpStats {
    let mut sim = NetSim::with_topology(net.topology.clone());
    let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
    let o2 = out.clone();
    let cfg = SessionConfig {
        tunnel: TunnelType::Nat,
        review_after: Some(SimDuration::from_secs(2)),
        withdraw_below: 0.10,
        seed: 7,
        ..SessionConfig::default()
    };
    DcolSession::launch(
        &mut sim,
        net.client,
        net.server,
        wps,
        500 * MB,
        cfg,
        move |_, s| *o2.borrow_mut() = Some(s),
    );
    sim.run();
    let stats = out.borrow_mut().take().expect("download completes");
    println!(
        "{label:<12} finished in {:>8} at {}",
        format!("{}", stats.duration()),
        stats.mean_rate()
    );
    stats
}
