//! Quickstart: provision a Home Point of Presence, enroll the
//! household, power it on, and use the data attic locally.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hpop::attic::server::AtticServer;
use hpop::core::{Appliance, Clock, HouseholdConfig};
use hpop::http::message::Request;
use hpop::http::url::Url;
use hpop::netsim::time::SimDuration;

fn main() {
    // 1. Provision the appliance for a household behind a typical home
    //    NAT (§III: reachability is planned automatically at power-on).
    let mut hpop = Appliance::new(HouseholdConfig::named("doe-family"));
    let alice = hpop.household_mut().add_user("alice");
    let _bob = hpop.household_mut().add_user("bob");
    let phone = hpop.household_mut().add_device(alice, "alice-phone");
    println!("{}", hpop.household());

    // 2. Power on: services start, reachability is planned.
    hpop.power_on();
    println!(
        "online: {} via {:?}",
        hpop.is_online(),
        hpop.reachability().expect("online").method
    );

    // 3. The data attic is the household's single source of truth
    //    (§IV-A). Store and read back a document over WebDAV semantics.
    let mut attic = AtticServer::new(hpop.tokens().clone()).with_bus(hpop.bus());
    let clock = hpop.clock();
    attic
        .store_mut()
        .mkcol("/notes")
        .expect("fresh attic accepts the collection");
    let url = Url::https("attic.home", "/notes/groceries.txt");
    let put = Request::put(url.clone(), &b"milk, eggs, fiber internet"[..]);
    let resp = attic.handle_local(&put, clock.now());
    println!("PUT {} -> {}", url.path(), resp.status);
    let get = attic.handle_local(&Request::get(url.clone()), clock.now());
    println!(
        "GET {} -> {} ({} bytes, etag {})",
        url.path(),
        get.status,
        get.body.len(),
        get.headers.get("etag").unwrap_or("-")
    );

    // 4. The appliance is always on: a simulated week passes.
    clock.advance(SimDuration::from_secs(7 * 24 * 3600));
    println!(
        "uptime after a simulated week: {} (device '{}' still reaches it from anywhere)",
        hpop.uptime(),
        hpop.household().device(phone).expect("registered").name
    );
}
