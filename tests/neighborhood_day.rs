//! A day in an ultrabroadband neighborhood: the paper's services
//! operating together over one CCZ topology.
//!
//! Homes run HPoPs; one publishes content through NoCDN using two
//! neighbors as edge peers; another pulls a big download through a
//! neighbor waypoint with DCol; the rest browse, with a cooperative
//! cache keeping traffic off the shared uplink. The test asserts the
//! cross-service invariants (integrity, payments, speedup, savings) all
//! hold simultaneously in one simulation world.

use hpop::dcol::collective::{DetourCollective, MemberId};
use hpop::dcol::session::{DcolSession, SessionConfig};
use hpop::http::url::Url;
use hpop::internet_home::coop::CoopCache;
use hpop::netsim::netsim::NetSim;
use hpop::netsim::presets::{ccz, detour_triangle, CczParams, DetourParams};
use hpop::netsim::units::{Bandwidth, MB};
use hpop::nocdn::accounting::Accounting;
use hpop::nocdn::loader::PageLoader;
use hpop::nocdn::origin::{ContentProvider, PageSpec};
use hpop::nocdn::peer::{NoCdnPeer, PeerBehavior, PeerId};
use hpop::nocdn::wrapper::WrapperPage;
use hpop::transport::mptcp::MptcpStats;
use hpop::workloads::zipf::WebUniverse;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

#[test]
fn lateral_bandwidth_beats_the_shared_uplink() {
    // §II "Lateral Bandwidth": home↔home transfers bypass the shared
    // uplink entirely. Saturate the uplink with 30 bulk downloads and
    // check a home-to-home transfer still runs at the full gigabit.
    let net = ccz(&CczParams::default());
    let mut sim = NetSim::with_topology(net.topology.clone());
    for h in 0..30 {
        sim.start_transfer(net.server, net.homes[h], 500 * MB, |_, _| {});
    }
    let lateral_rate = Rc::new(RefCell::new(0f64));
    let lr = lateral_rate.clone();
    sim.start_transfer(net.homes[40], net.homes[41], 500 * MB, move |_, info| {
        *lr.borrow_mut() = info.mean_rate.as_mbps();
    });
    sim.run();
    let rate = *lateral_rate.borrow();
    assert!(rate > 900.0, "lateral transfer only reached {rate} Mbps");
}

#[test]
fn nocdn_between_neighbors_offloads_and_stays_honest() {
    // A home business publishes through two neighbor HPoPs, one of
    // which turns malicious halfway through the recruitment drive.
    let mut origin = ContentProvider::new("bakery.example");
    origin.put_object("/menu.html", vec![b'm'; 30_000]);
    origin.put_object("/cake.jpg", vec![b'c'; 400_000]);
    origin.put_page(PageSpec {
        container: "/menu.html".into(),
        embedded: vec!["/cake.jpg".into()],
    });
    let mut peers: BTreeMap<PeerId, NoCdnPeer> = BTreeMap::new();
    peers.insert(PeerId(0), NoCdnPeer::new(PeerId(0)));
    peers.insert(
        PeerId(1),
        NoCdnPeer::with_behavior(PeerId(1), PeerBehavior::CorruptsContent),
    );
    let mut acct = Accounting::new();
    let master = [9u8; 32];
    let mut clean_pages = 0;
    for client in 0..40u64 {
        let assignments: BTreeMap<String, PeerId> = [
            ("/menu.html".to_owned(), PeerId((client % 2) as u32)),
            ("/cake.jpg".to_owned(), PeerId(((client + 1) % 2) as u32)),
        ]
        .into_iter()
        .collect();
        let wrapper = WrapperPage::generate(
            &mut origin,
            "/menu.html",
            client,
            &assignments,
            &mut acct,
            &master,
            client == 0,
        );
        let mut loader = PageLoader::new(client);
        let (report, page) = loader.load(&wrapper, &mut peers, &mut origin);
        if page.len() == 430_000 && report.corrupted.len() + report.unavailable.len() <= 2 {
            clean_pages += 1;
        }
    }
    assert_eq!(clean_pages, 40, "every page must assemble clean");
    for (_, p) in peers.iter_mut() {
        for r in p.upload_records() {
            let _ = acct.settle(&r);
        }
    }
    // The honest neighbor got paid; the corrupting one earned nothing.
    assert!(acct.payable_bytes(PeerId(0)) > 0);
    assert_eq!(acct.payable_bytes(PeerId(1)), 0);
}

#[test]
fn dcol_detour_and_collective_expulsion() {
    let net = detour_triangle(&DetourParams::default());
    let mut collective = DetourCollective::new().with_strike_limit(2);
    let me = collective.join(net.client);
    let neighbor = collective.join(net.waypoint);

    // The download through the neighbor's HPoP beats the native path.
    let run = |wps: &[(MemberId, hpop::netsim::topology::NodeId)]| -> MptcpStats {
        let mut sim = NetSim::with_topology(net.topology.clone());
        let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        DcolSession::launch(
            &mut sim,
            net.client,
            net.server,
            wps,
            100 * MB,
            SessionConfig::default(),
            move |_, s| *o2.borrow_mut() = Some(s),
        );
        sim.run();
        let s = out.borrow_mut().take().expect("done");
        s
    };
    let direct = run(&[]);
    let wps = collective.waypoints_for(me);
    let detoured = run(&wps);
    assert!(detoured.duration() < direct.duration());

    // Later the waypoint misbehaves twice and is expelled; no waypoints
    // remain for the next session.
    collective.strike(neighbor);
    assert!(collective.strike(neighbor));
    assert!(collective.waypoints_for(me).is_empty());
}

#[test]
fn cooperative_cache_protects_the_aggregation_link() {
    // Forty homes, shared Zipf interests: cooperation must cut uplink
    // bytes by well over half (§IV-D).
    let mut rng = StdRng::seed_from_u64(99);
    let universe = WebUniverse::generate(800, 1.0, 120_000, &mut rng);
    let mut coop = CoopCache::new(40);
    let mut indep = CoopCache::new(40).independent();
    for _ in 0..100 {
        for home in 0..40 {
            let o = universe.sample(&mut rng);
            let url = Url::https("web.example", &o.path);
            coop.request(home, &url, o.bytes);
            indep.request(home, &url, o.bytes);
        }
    }
    let saved = 1.0 - coop.stats().uplink_bytes as f64 / indep.stats().uplink_bytes as f64;
    assert!(saved > 0.5, "uplink savings only {:.1}%", saved * 100.0);
    // And the neighborhood never stores more than one copy per object.
    assert!(coop.stored_objects() <= 800);
}

#[test]
fn bottleneck_shift_with_and_without_hpop_services() {
    // §II arithmetic directly on the shared world: 20 active gigabit
    // homes on the 10 Gbps uplink get ~500 Mbps each.
    let net = ccz(&CczParams::default());
    let mut sim = NetSim::with_topology(net.topology.clone());
    let rates = Rc::new(RefCell::new(Vec::new()));
    for h in 0..20 {
        let r2 = rates.clone();
        sim.start_transfer(net.server, net.homes[h], 250 * MB, move |_, info| {
            r2.borrow_mut().push(info.mean_rate);
        });
    }
    sim.run();
    for r in rates.borrow().iter() {
        assert!(
            (r.as_mbps() - 500.0).abs() < 50.0,
            "expected aggregation-limited ~500 Mbps, got {r}"
        );
    }
    let _unused = Bandwidth::gbps(1.0);
}
