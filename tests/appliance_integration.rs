//! Cross-crate integration: the assembled appliance running the paper's
//! services together — attic writes flowing over the event bus into
//! Internet@home's collector, vault-backed deep-web gathering, grants
//! bound to the appliance identity, and service lifecycle under the
//! shared clock.

use hpop::attic::grant::AccessGrant;
use hpop::attic::server::AtticServer;
use hpop::core::auth::Permission;
use hpop::core::vault::SiteCredential;
use hpop::core::{Appliance, Clock, HouseholdConfig, Service};
use hpop::http::message::Request;
use hpop::http::url::Url;
use hpop::internet_home::collector::{DeepWebCollector, DeepWebSource};
use hpop::netsim::time::{SimDuration, SimTime};

struct AtticService;
impl Service for AtticService {
    fn name(&self) -> &str {
        "data-attic"
    }
}

struct InternetHomeService;
impl Service for InternetHomeService {
    fn name(&self) -> &str {
        "internet-home"
    }
}

#[test]
fn attic_writes_trigger_prefetch_hints_over_the_bus() {
    let mut hpop = Appliance::new(HouseholdConfig::named("doe"));
    hpop.power_on();
    let bus = hpop.bus();
    let mut attic = AtticServer::new(hpop.tokens().clone()).with_bus(bus.clone());
    attic.store_mut().mkcol("/finance").expect("mkcol");

    // The collector watches attic.write events; the read callback
    // mirrors what it would fetch from the attic store. (In-process the
    // content is passed straight through.)
    let collector = DeepWebCollector::new();
    collector.attach(&bus, |path| {
        (path == "/finance/tax-2026.txt").then(|| "dividends: TICKER:ACME TICKER:ZORG".to_owned())
    });

    // A tax document lands in the attic (the §IV-D worked example).
    let clock = hpop.clock();
    let resp = attic.handle_local(
        &Request::put(
            Url::https("attic.home", "/finance/tax-2026.txt"),
            &b"dividends: TICKER:ACME TICKER:ZORG"[..],
        ),
        clock.now(),
    );
    assert!(resp.status.is_success());

    // The HPoP now knows to keep those quotes fresh.
    let hints = collector.take_hints();
    assert_eq!(hints.len(), 2);
    assert!(hints
        .iter()
        .all(|u| u.host() == "quotes.example" && u.path().starts_with("/q/")));
}

#[test]
fn vault_gated_deep_web_collection_respects_ownership() {
    let mut hpop = Appliance::new(HouseholdConfig::named("doe"));
    let alice = hpop.household_mut().add_user("alice");
    let bob = hpop.household_mut().add_user("bob");
    hpop.power_on();

    hpop.vault_mut().store(
        alice,
        "mail.example",
        SiteCredential {
            username: "alice".into(),
            secret: "alice-pass".into(),
        },
        "setup",
    );

    let mut collector = DeepWebCollector::new();
    collector.add_source(DeepWebSource {
        site: "mail.example".into(),
        owner: alice,
        url: Url::https("mail.example", "/inbox"),
    });
    // Bob's collector entry for the same site is denied by the vault.
    collector.add_source(DeepWebSource {
        site: "mail.example".into(),
        owner: bob,
        url: Url::https("mail.example", "/inbox"),
    });

    let report = collector.collect(hpop.vault_mut(), "internet-home", |_, secret| {
        assert_eq!(secret, "alice-pass");
        true
    });
    assert_eq!(report.fetched.len(), 1);
    assert_eq!(report.denied, vec!["mail.example".to_owned()]);

    // Every access (and the denial) is in the household's audit log.
    let log = hpop.vault_mut().audit_log().to_vec();
    assert!(log.iter().any(|e| e.action == "access"));
    assert!(log.iter().any(|e| e.action == "denied"));
}

#[test]
fn grants_issued_by_one_appliance_fail_on_another() {
    let doe = Appliance::new(HouseholdConfig::named("doe"));
    let smith = Appliance::new(HouseholdConfig::named("smith"));
    let token = doe.tokens().issue(
        "clinic",
        "/health/clinic",
        Permission::ReadWrite,
        SimTime::from_secs(1_000),
    );
    let grant = AccessGrant::new(Url::https("doe.hpop.example", "/"), token);
    let wire = grant.encode();

    // The Smith family's attic rejects the Doe grant outright.
    let mut smith_attic = AtticServer::new(smith.tokens().clone());
    smith_attic.store_mut().mkcol("/health").expect("mkcol");
    let decoded = AccessGrant::decode(&wire).expect("well-formed");
    let req = Request::put(
        Url::https("smith.hpop.example", "/health/clinic/r.json"),
        &b"{}"[..],
    )
    .with_header("authorization", decoded.authorization_header());
    let resp = smith_attic.handle_external(&req, SimTime::from_secs(1));
    assert_eq!(resp.status.0, 401);

    // The Doe attic accepts it (after the collection exists).
    let mut doe_attic = AtticServer::new(doe.tokens().clone());
    doe_attic
        .store_mut()
        .mkcol_recursive("/health/clinic")
        .expect("mkcol");
    let resp = doe_attic.handle_external(&req, SimTime::from_secs(1));
    assert!(resp.status.is_success());
}

#[test]
fn service_lifecycle_under_power_cycles() {
    let mut hpop = Appliance::new(HouseholdConfig::named("doe"));
    hpop.services_mut().register(AtticService);
    hpop.services_mut().register(InternetHomeService);
    hpop.power_on();
    let clock = hpop.clock();
    assert_eq!(
        hpop.services().status("data-attic"),
        Some(hpop::core::ServiceStatus::Running)
    );
    clock.advance(SimDuration::from_secs(3_600));

    // A power outage.
    hpop.power_off();
    assert!(!hpop.is_online());
    clock.advance(SimDuration::from_secs(600));
    hpop.power_on();
    clock.advance(SimDuration::from_secs(3_600));

    // Uptime excludes the outage; services restarted automatically.
    assert_eq!(hpop.uptime(), SimDuration::from_secs(7_200));
    assert_eq!(
        hpop.services().uptime("internet-home", &clock),
        Some(SimDuration::from_secs(7_200))
    );
    assert_eq!(hpop.services().counters("data-attic"), Some((2, 0)));
}
